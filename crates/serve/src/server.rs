//! The phase-decoupled serving scheduler.
//!
//! ParaFold's architecture on our cost model: the CPU-side MSA phase
//! and the GPU-side inference phase run as separate queues so neither
//! resource idles waiting for the other.
//!
//! - **CPU pool** — `cpu_workers` workers drain MSA jobs FCFS (earliest
//!   free worker wins, lowest index breaks ties). A cache hit skips the
//!   pool entirely and charges only the storage-priced feature load.
//! - **GPU queue** — requests whose features are ready queue for the
//!   GPU, which greedily takes up to `gpu_batch` ready requests per
//!   dispatch. The first batch pays the cold runtime init (driver,
//!   imports, weights load — Fig. 8's dominant slice); each *shape*
//!   (benchmark sample) pays `xla_compile` once, on its first
//!   appearance; each batch pays one warm dispatch setup; each request
//!   pays its kernel-execution seconds. That is exactly the
//!   amortization Fig. 8 and the persistent-session ablation price for
//!   a single query, applied across a stream.
//! - **Admission & deadlines** — the §VI estimator verdict rejects
//!   shapes whose paper-scale MSA peak cannot fit the platform
//!   (reusing [`CapacityModel`]), and every served request is checked
//!   against a per-request [`Deadline`].
//!
//! The simulation runs on the shared discrete-event engine
//! ([`afsb_rt::sim::SimEngine`]): one `(time, seq)`-ordered queue
//! carries arrivals, MSA completions, cache fills, GPU batch closes
//! and deadline timers, costing O(events · log n) instead of a
//! per-step rescan. Same seed, same config, byte-identical report —
//! and bit-identical to the frozen seed scheduler kept in
//! [`crate::reference`] (enforced by `tests/equivalence.rs`).

use crate::cache::FeatureCache;
use crate::workload::{self, Request, WorkloadConfig};
use afsb_core::calib;
use afsb_core::context::{BenchContext, ContextConfig};
use afsb_core::inference_phase::gpu_for;
use afsb_core::msa_phase::{run_msa_phase, MsaPhaseOptions};
use afsb_core::resilience::Deadline;
use afsb_gpu::runtime::{GpuRuntime, HostCpuModel};
use afsb_model::{run_inference, ModelConfig};
use afsb_rt::obs::timeline::{SloConfig, SloMonitor, SloOutcome, TimelineSampler};
use afsb_rt::obs::{Histogram, HistogramSummary, ObsSession};
use afsb_rt::sim::{Event, ProvenanceEdge, SimEngine, TimerId, WaitEdge};
use afsb_seq::samples::SampleId;
use afsb_simarch::config::GIB;
use afsb_simarch::memory::CapacityModel;
use afsb_simarch::Platform;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Latency histogram bucket bounds (simulated seconds): sub-minute for
/// warm cache+session hits through multi-day for queued cold misses.
pub const LATENCY_BOUNDS: [f64; 16] = [
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0, 7200.0, 14400.0, 43200.0,
    86400.0, 259200.0,
];

/// Fixed per-file open/seek overhead of a cached-feature load.
const FEATURE_LOAD_BASE_S: f64 = 0.05;

/// Bytes per (MSA row × residue) cell of a serialized feature file.
const FEATURE_CELL_BYTES: u64 = 16;

/// Serving-simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Platform served on.
    pub platform: Platform,
    /// The request stream.
    pub workload: WorkloadConfig,
    /// MSA worker-pool width (concurrent MSA jobs).
    pub cpu_workers: usize,
    /// GPU batch size B (requests per dispatch).
    pub gpu_batch: usize,
    /// Feature-cache capacity in bytes (`0` disables caching).
    pub cache_capacity_bytes: u64,
    /// Start with every catalog entity's features cached (steady-state
    /// serving) instead of an empty cache (cold start).
    pub prewarm_cache: bool,
    /// Per-request latency deadline.
    pub deadline: Deadline,
    /// Coalesce concurrent misses for the same entity: instead of
    /// duplicating the MSA search, the second miss waits on the
    /// in-flight fill (readiness via a `CacheFill` event) and counts as
    /// a coalesced cache hit. Off by default — the canonical scenarios
    /// predate the feature and their baselines must not move.
    pub coalesce_misses: bool,
    /// Observation-only telemetry (timeline sampler + SLO monitor).
    /// Never changes scheduling decisions or priced floats; off by
    /// default so existing baselines do not move.
    pub telemetry: TelemetryConfig,
    /// Record causal provenance (the event engine's parent edges plus
    /// the serve-side wait/service splits) into
    /// [`ServeReport::causal`] for critical-path extraction and
    /// what-if projection. Observation-only: outcomes, floats and
    /// rendered reports are byte-identical with it on or off
    /// (`tests/causal.rs`). Off by default.
    pub provenance: bool,
}

/// Serving-telemetry switches. Everything here is observation-only:
/// enabling any of it leaves `ServeReport` results byte-identical to a
/// run without it (enforced by `tests/telemetry.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TelemetryConfig {
    /// Timeline sampling interval in simulated seconds (`0` disables
    /// the sampler).
    pub timeline_interval_s: f64,
    /// Windowed burn-rate SLO monitor (`None` disables it).
    pub slo: Option<SloConfig>,
}

impl TelemetryConfig {
    /// The serving default: a dashboard-friendly sampling interval
    /// (one row per 2 simulated hours quick, 4 full) plus the standard
    /// goodput SLO.
    pub fn standard(quick: bool) -> TelemetryConfig {
        TelemetryConfig {
            timeline_interval_s: if quick { 7200.0 } else { 14400.0 },
            slo: Some(SloConfig::standard()),
        }
    }

    /// Whether any instrument is enabled.
    pub fn enabled(&self) -> bool {
        self.timeline_interval_s > 0.0 || self.slo.is_some()
    }
}

/// Gauge columns sampled by the serving timeline, in emission order:
/// outstanding MSA jobs, busy pool workers, GPU busy flag, cache
/// entries, cache hit rate, in-flight cache fills, breaker-open flag
/// (always 0 outside the chaos loop).
pub const TIMELINE_COLUMNS: [&str; 7] = [
    "msa_q", "workers", "gpu", "cache", "hit_rate", "fills", "brk",
];

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            platform: Platform::Server,
            workload: WorkloadConfig::default(),
            cpu_workers: 4,
            gpu_batch: 4,
            cache_capacity_bytes: 64 * GIB,
            prewarm_cache: false,
            deadline: Deadline::new(Some(3.0 * 86400.0)),
            coalesce_misses: false,
            telemetry: TelemetryConfig::default(),
            provenance: false,
        }
    }
}

/// Priced costs of one request shape (one benchmark sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeCost {
    /// Full MSA-phase wall seconds on a pool worker.
    pub msa_s: f64,
    /// Serialized MSA feature-file size.
    pub feature_bytes: u64,
    /// Seconds to load the feature file from NVMe on a cache hit.
    pub feature_load_s: f64,
    /// Paper-scale MSA peak memory (drives admission).
    pub peak_msa_bytes: u64,
    /// Whether the §VI admission check lets the shape run.
    pub admitted: bool,
    /// One-time XLA compilation seconds for the shape.
    pub compile_s: f64,
    /// Kernel-execution seconds per request.
    pub compute_s: f64,
}

/// Priced costs for every shape plus the process-wide constants.
#[derive(Debug, Clone)]
pub struct CostTable {
    /// Platform the table was priced on.
    pub platform: Platform,
    /// MSA threads per pool worker used for pricing and admission.
    pub msa_threads: usize,
    /// One-time cold runtime init (first batch only).
    pub init_s: f64,
    /// Warm dispatch setup + output writeback per batch.
    pub dispatch_s: f64,
    /// Per-shape costs.
    pub shapes: BTreeMap<SampleId, ShapeCost>,
}

impl CostTable {
    /// Price every benchmark shape on `platform`. `quick` selects the
    /// test-scale databases and sampling budget (same split as the
    /// bench harness); `msa_threads` is the per-worker thread count.
    pub fn build(platform: Platform, quick: bool, msa_threads: usize, seed: u64) -> CostTable {
        let (config, sample_cap) = if quick {
            (ContextConfig::test(), 400_000)
        } else {
            (ContextConfig::bench(), 6_000_000)
        };
        let mut ctx = BenchContext::new(config);
        let runtime = GpuRuntime::new(
            gpu_for(platform),
            HostCpuModel {
                single_core_score: calib::host_cpu_score(platform),
            },
        );
        let capacity = CapacityModel::new(&platform.spec());
        let storage_bps = platform.spec().storage.seq_read_gibs * GIB as f64;

        let mut shapes = BTreeMap::new();
        let mut init_s = 0.0f64;
        let mut dispatch_s = 0.0f64;
        for &id in &SampleId::all() {
            let data = ctx.sample_data(id);
            let msa = run_msa_phase(
                &data,
                platform,
                msa_threads,
                &MsaPhaseOptions {
                    sample_cap,
                    ..MsaPhaseOptions::default()
                },
            );
            let peak = data.paper_peak_msa_bytes(msa_threads);
            let admitted = capacity.admit(peak).completes() && msa.completed();
            let model = run_inference(
                &data.sample.assembly,
                data.msa_depth,
                &ModelConfig::paper(),
                seed,
            );
            let cold = runtime.run_cold(&model.cost_log, model.working_set_bytes);
            let warm = runtime.run_warm(&model.cost_log, model.working_set_bytes);
            init_s = cold.init_s;
            dispatch_s = warm.init_s + warm.finalize_s;
            let feature_bytes = data.msa_depth as u64
                * data.sample.assembly.total_residues() as u64
                * FEATURE_CELL_BYTES;
            shapes.insert(
                id,
                ShapeCost {
                    msa_s: msa.wall_seconds(),
                    feature_bytes,
                    feature_load_s: FEATURE_LOAD_BASE_S + feature_bytes as f64 / storage_bps,
                    peak_msa_bytes: peak,
                    admitted,
                    compile_s: cold.xla_compile_s,
                    compute_s: warm.gpu_compute_s,
                },
            );
        }
        CostTable {
            platform,
            msa_threads,
            init_s,
            dispatch_s,
            shapes,
        }
    }

    /// The cost of one shape.
    ///
    /// # Panics
    ///
    /// Panics when the shape was never priced.
    pub fn shape(&self, id: SampleId) -> &ShapeCost {
        self.shapes
            .get(&id)
            .unwrap_or_else(|| panic!("shape {} not in the cost table", id.name()))
    }
}

/// Where one request's latency went, split into named phases that sum
/// to [`RequestOutcome::latency_s`] (the GPU-service field is closed as
/// the exact residual, so the reconstruction is bit-faithful up to one
/// rounding ulp — `tests/telemetry.rs` property-checks 1e-9).
///
/// All fields accumulate (`+=`) across scheduling decisions, so chaos
/// requeues, retimes and storage stalls attribute naturally: a killed
/// attempt's un-run tail is subtracted, backoff and breaker-parked time
/// lands in `admission_wait_s`, and a re-dispatched attempt adds its own
/// queue and service segments.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseSegments {
    /// Chaos-only: requeue backoff plus breaker-parked seconds between
    /// a kill and the next dispatch (0 in fault-free runs).
    pub admission_wait_s: f64,
    /// Seconds queued for a free MSA pool worker.
    pub msa_queue_wait_s: f64,
    /// Seconds of MSA service actually run on a worker.
    pub msa_service_s: f64,
    /// Cache-path wait: storage-priced feature load, coalesced wait on
    /// an in-flight fill, and chaos storage-stall inflation.
    pub cache_wait_s: f64,
    /// Seconds between feature readiness and the GPU batch opening.
    pub batch_wait_s: f64,
    /// This batch's `xla_compile` seconds (shared by every member of
    /// the batch that triggered the compile).
    pub xla_compile_s: f64,
    /// GPU service residual: init, reinit, dispatch and kernel compute.
    pub gpu_service_s: f64,
}

impl PhaseSegments {
    /// Phase names in canonical (roughly chronological) order, matching
    /// [`PhaseSegments::get`].
    pub const NAMES: [&'static str; 7] = [
        "admission_wait",
        "msa_queue_wait",
        "msa_service",
        "cache_wait",
        "batch_wait",
        "xla_compile",
        "gpu_service",
    ];

    /// The `i`-th phase value in [`PhaseSegments::NAMES`] order.
    pub fn get(&self, i: usize) -> f64 {
        match i {
            0 => self.admission_wait_s,
            1 => self.msa_queue_wait_s,
            2 => self.msa_service_s,
            3 => self.cache_wait_s,
            4 => self.batch_wait_s,
            5 => self.xla_compile_s,
            6 => self.gpu_service_s,
            _ => panic!("phase index {i} out of range"),
        }
    }

    /// Sum of every non-GPU phase, in fixed field order (the same order
    /// [`PhaseSegments::total`] uses, so the residual closure is exact).
    fn non_gpu_total(&self) -> f64 {
        self.admission_wait_s
            + self.msa_queue_wait_s
            + self.msa_service_s
            + self.cache_wait_s
            + self.batch_wait_s
            + self.xla_compile_s
    }

    /// Sum of all phases; reproduces `latency_s()` for finished
    /// requests.
    pub fn total(&self) -> f64 {
        self.non_gpu_total() + self.gpu_service_s
    }

    /// Close the attribution at completion: the GPU-service phase is
    /// the exact residual between the observed latency and every other
    /// phase, so the seven fields always reconstruct `latency_s()`.
    /// Float drift across chaos requeue accumulation can push the
    /// residual a few ulps negative; it is clamped to 0 so the phase
    /// never reads as negative time (the closure property still holds
    /// at 1e-9).
    pub(crate) fn close(&mut self, latency_s: f64) {
        let residual = latency_s - self.non_gpu_total();
        debug_assert!(
            residual > -1e-9,
            "gpu_service residual {residual} is more than rounding-negative"
        );
        self.gpu_service_s = residual.max(0.0);
    }
}

/// Per-request outcome of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// The request served.
    pub request: Request,
    /// Whether the MSA features came from the cache.
    pub cache_hit: bool,
    /// Whether admission control rejected the request.
    pub rejected: bool,
    /// When the features were ready (MSA done or cache load done).
    pub ready_s: f64,
    /// When inference completed (0 for rejected requests).
    pub done_s: f64,
    /// Whether the request finished past its deadline.
    pub deadline_missed: bool,
    /// Latency attribution (all-zero for rejected requests; partial for
    /// chaos-shed/failed ones, whose `done_s` stays 0).
    pub segments: PhaseSegments,
}

impl RequestOutcome {
    /// Arrival-to-completion latency in simulated seconds.
    pub fn latency_s(&self) -> f64 {
        self.done_s - self.request.arrival_s
    }
}

/// The non-queue portion of one provenance edge, recorded by the
/// serving loop alongside the engine's edge log so the what-if
/// projector can scale service and queueing differently (adding
/// workers shrinks the queue but not the service; a faster GPU shrinks
/// both but not the one-time compile).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegmentSplit {
    /// Queue/contention seconds inside the edge (waiting for a free
    /// worker, or for the GPU to drain the previous batch).
    pub wait_s: f64,
    /// Pure service seconds (MSA compute; GPU init + dispatch +
    /// kernel execution).
    pub service_s: f64,
    /// One-time XLA compilation seconds inside a GPU edge.
    pub compile_s: f64,
}

/// Observation-only causal record of one serving run: the engine's
/// provenance edges plus the serve-side annotations the causal
/// profiler needs. Populated when [`ServeConfig::provenance`] is set;
/// carrying it changes nothing about the run itself
/// (`tests/causal.rs` gates byte-identity).
#[derive(Debug, Clone, Default)]
pub struct CausalLog {
    /// The engine's causal edge log, indexed by event seq.
    pub edges: Vec<ProvenanceEdge>,
    /// Seq of the completion event that terminates the makespan (the
    /// last batch's `GpuDone`), `None` when nothing was served.
    pub makespan_event: Option<u64>,
    /// Per-request completion event seq (its batch's `GpuDone`);
    /// `None` for rejected / shed / failed requests.
    pub completions: Vec<Option<u64>>,
    /// Wait/service splits for worker-busy and gpu-busy edges, keyed
    /// by event seq.
    pub splits: BTreeMap<u64, SegmentSplit>,
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The configuration served.
    pub config: ServeConfig,
    /// Per-request outcomes in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests served to completion.
    pub served: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Served requests that missed their deadline.
    pub deadline_missed: usize,
    /// End-to-end makespan (last completion, at least the last arrival).
    pub makespan_s: f64,
    /// Throughput in queries per hour.
    pub throughput_qph: f64,
    /// Seconds the GPU spent busy.
    pub gpu_busy_s: f64,
    /// GPU busy fraction of the makespan.
    pub gpu_occupancy: f64,
    /// GPU dispatches issued.
    pub batches: usize,
    /// Distinct shapes compiled.
    pub compiled_shapes: usize,
    /// Feature-cache hits.
    pub cache_hits: u64,
    /// Feature-cache misses.
    pub cache_misses: u64,
    /// Feature-cache evictions.
    pub cache_evictions: u64,
    /// Cache hit rate over lookups.
    pub cache_hit_rate: f64,
    /// Hits that piggybacked on an in-flight fill (always `0` unless
    /// `coalesce_misses` is on).
    pub cache_coalesced: u64,
    /// Latency distribution of served requests (`None` when none).
    pub latency: Option<HistogramSummary>,
    /// Gauge timeline (populated when `telemetry.timeline_interval_s`
    /// is set; observation-only).
    pub timeline: Option<TimelineSampler>,
    /// SLO burn-rate evaluation (populated when `telemetry.slo` is set;
    /// observation-only).
    pub slo: Option<SloOutcome>,
    /// Causal provenance record (populated when `config.provenance`
    /// is set; observation-only).
    pub causal: Option<CausalLog>,
}

impl ServeReport {
    /// Human-readable per-run report block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = &self.config.workload;
        let _ = writeln!(
            out,
            "serve: {} requests over {} entities on {} (workers {}, batch {}, cache {} GiB{}{})",
            w.num_requests,
            w.catalog_size,
            self.config.platform,
            self.config.cpu_workers,
            self.config.gpu_batch,
            self.config.cache_capacity_bytes / GIB,
            if self.config.prewarm_cache {
                ", prewarmed"
            } else {
                ""
            },
            if self.config.coalesce_misses {
                ", coalescing"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "  throughput {:.2} queries/h over {:.0} s makespan ({} served, {} rejected, {} deadline-missed)",
            self.throughput_qph, self.makespan_s, self.served, self.rejected, self.deadline_missed
        );
        let _ = writeln!(
            out,
            "  cache: {:.1}% hit rate ({} hits / {} misses, {} evictions{})",
            self.cache_hit_rate * 100.0,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            if self.config.coalesce_misses {
                format!(", {} coalesced", self.cache_coalesced)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "  gpu: {:.1}% occupancy ({:.0} s busy, {} batches, {} shapes compiled)",
            self.gpu_occupancy * 100.0,
            self.gpu_busy_s,
            self.batches,
            self.compiled_shapes
        );
        match &self.latency {
            Some(l) => {
                let _ = writeln!(
                    out,
                    "  latency: p50 {:.0} s  p90 {:.0} s  p99 {:.0} s  (mean {:.0} s)",
                    l.p50, l.p90, l.p99, l.mean
                );
            }
            None => {
                let _ = writeln!(out, "  latency: n/a (no requests served)");
            }
        }
        out
    }

    /// Outcomes that finished (not rejected, not chaos-shed/failed),
    /// sorted by latency with request id breaking ties.
    fn finished_by_latency(&self) -> Vec<&RequestOutcome> {
        let mut v: Vec<&RequestOutcome> = self
            .outcomes
            .iter()
            .filter(|o| !o.rejected && o.done_s > 0.0)
            .collect();
        v.sort_by(|a, b| {
            a.latency_s()
                .partial_cmp(&b.latency_s())
                .expect("finite latencies")
                .then(a.request.id.cmp(&b.request.id))
        });
        v
    }

    /// The exact finished request sitting at quantile `p` of the
    /// latency distribution (rank `ceil(p·n)`), or `None` when nothing
    /// finished.
    pub fn percentile_outcome(&self, p: f64) -> Option<&RequestOutcome> {
        let sorted = self.finished_by_latency();
        if sorted.is_empty() {
            return None;
        }
        let rank = (p.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        Some(sorted[rank - 1])
    }

    /// Mean share of finished-request latency attributed to each phase,
    /// as `(name, share)` pairs summing to ~1, or `None` when nothing
    /// finished.
    pub fn attribution_shares(&self) -> Option<[(&'static str, f64); 7]> {
        let finished = self.finished_by_latency();
        if finished.is_empty() {
            return None;
        }
        let total: f64 = finished.iter().map(|o| o.latency_s()).sum();
        if total <= 0.0 {
            return None;
        }
        let mut out = [("", 0.0); 7];
        for (i, slot) in out.iter_mut().enumerate() {
            let phase: f64 = finished.iter().map(|o| o.segments.get(i)).sum();
            *slot = (PhaseSegments::NAMES[i], phase / total);
        }
        Some(out)
    }

    /// "Where does p50/p90/p99 live" — per-phase mean seconds and share
    /// over finished requests, plus the exact p50/p90/p99 requests'
    /// own segments.
    pub fn render_attribution(&self) -> String {
        let finished = self.finished_by_latency();
        if finished.is_empty() {
            return "latency attribution: n/a (no requests finished)\n".to_owned();
        }
        let n = finished.len();
        let mean_latency: f64 = finished.iter().map(|o| o.latency_s()).sum::<f64>() / n as f64;
        let pick = |p: f64| {
            self.percentile_outcome(p)
                .expect("finished set is non-empty")
        };
        let (p50, p90, p99) = (pick(0.50), pick(0.90), pick(0.99));
        let mut out = String::new();
        let _ = writeln!(out, "latency attribution over {n} finished requests:");
        let _ = writeln!(
            out,
            "  {:<16} {:>11} {:>7} {:>11} {:>11} {:>11}",
            "phase", "mean s", "share", "p50 req s", "p90 req s", "p99 req s"
        );
        for (i, name) in PhaseSegments::NAMES.iter().enumerate() {
            let mean = finished.iter().map(|o| o.segments.get(i)).sum::<f64>() / n as f64;
            let _ = writeln!(
                out,
                "  {:<16} {:>11.1} {:>6.1}% {:>11.1} {:>11.1} {:>11.1}",
                name,
                mean,
                mean / mean_latency * 100.0,
                p50.segments.get(i),
                p90.segments.get(i),
                p99.segments.get(i)
            );
        }
        let _ = writeln!(
            out,
            "  {:<16} {:>11.1} {:>6.1}% {:>11.1} {:>11.1} {:>11.1}",
            "total",
            mean_latency,
            100.0,
            p50.latency_s(),
            p90.latency_s(),
            p99.latency_s()
        );
        out
    }

    /// ASCII waterfall of the exact p99 request: one bar per phase at
    /// its cumulative offset within the request's latency.
    pub fn render_p99_waterfall(&self) -> String {
        const BAR_W: usize = 36;
        let Some(o) = self.percentile_outcome(0.99) else {
            return "p99 waterfall: n/a (no requests finished)\n".to_owned();
        };
        let latency = o.latency_s();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "p99 waterfall: request #{} (entity {}, {}) arrival {:.1} s, latency {:.1} s:",
            o.request.id,
            o.request.entity,
            o.request.sample.name(),
            o.request.arrival_s,
            latency
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>11} {:>11}  |{:<36}|",
            "phase", "start s", "dur s", "0% .. 100% of latency"
        );
        let mut offset = 0.0f64;
        for (i, name) in PhaseSegments::NAMES.iter().enumerate() {
            let dur = o.segments.get(i);
            let lo = ((offset / latency) * BAR_W as f64).floor() as usize;
            let hi = (((offset + dur) / latency) * BAR_W as f64).floor() as usize;
            let mut bar = vec![b'.'; BAR_W];
            for cell in bar.iter_mut().take(hi.min(BAR_W)).skip(lo.min(BAR_W)) {
                *cell = b'#';
            }
            let _ = writeln!(
                out,
                "  {:<16} {:>11.1} {:>11.1}  |{}|",
                name,
                offset,
                dur,
                String::from_utf8(bar).expect("ascii bar")
            );
            offset += dur;
        }
        out
    }
}

/// Run the serving simulation. The tracer in `obs` must be fresh (the
/// run lays its spans from simulated second 0); counters, gauges and
/// the latency histogram are published into `obs.metrics`.
///
/// Since the `rt::sim` refactor the scheduler is event-driven: one
/// [`SimEngine`] queue carries `Arrival` → (`MsaDone` | `CacheFill`) →
/// `BatchClose` → `GpuDone` chains plus cancellable `DeadlineExpired`
/// timers, so a run costs O(events · log n) instead of a per-step
/// rescan. Every arithmetic expression, comparator and span-creation
/// order is kept identical to the seed step-scan loop (frozen in
/// [`crate::reference`]), so same-seed runs are byte-identical to it —
/// `tests/equivalence.rs` enforces this on the canonical scenarios.
/// See DESIGN.md ("Event engine") for the event taxonomy and the
/// tie-breaking argument.
pub fn run_serve(config: &ServeConfig, costs: &CostTable, obs: &mut ObsSession) -> ServeReport {
    assert!(config.cpu_workers > 0, "need at least one CPU worker");
    assert!(config.gpu_batch > 0, "need a GPU batch size of at least 1");

    let requests = workload::generate(&config.workload);
    let mut cache = FeatureCache::new(config.cache_capacity_bytes);
    if config.prewarm_cache {
        for entity in 0..config.workload.catalog_size {
            let shape = costs.shape(workload::sample_for_entity(entity));
            cache.insert(entity, shape.feature_bytes);
        }
    }

    obs.tracer.begin("serve");

    let mut engine = SimEngine::new();
    if config.provenance {
        engine.record_provenance();
    }
    // Serve-side causal annotations (populated only under provenance):
    // wait/service splits per edge, per-request completion events and
    // the completion that terminates the makespan.
    let mut splits: BTreeMap<u64, SegmentSplit> = BTreeMap::new();
    let mut completions: Vec<Option<u64>> = vec![None; requests.len()];
    let mut best_done: Option<(f64, u64)> = None;
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.len());
    let mut workers = vec![0.0f64; config.cpu_workers];
    // Fills still being computed by a pool worker: entity → MSA done
    // time. Read only when coalescing is on.
    let mut in_flight: BTreeMap<usize, f64> = BTreeMap::new();
    // Ready-but-unserved outcome indices (outcome index == request id).
    let mut pool: Vec<usize> = Vec::new();
    let mut deadline_timers: Vec<Option<TimerId>> = vec![None; requests.len()];
    let mut gpu_free = 0.0f64;
    let mut gpu_busy = 0.0f64;
    let mut batches = 0usize;
    let mut compiled: BTreeSet<SampleId> = BTreeSet::new();
    let mut inited = false;

    // Observation-only telemetry: gauge counters cost integer ops and
    // never feed back into any scheduling decision or priced float.
    let mut timeline = if config.telemetry.timeline_interval_s > 0.0 {
        Some(TimelineSampler::new(
            config.telemetry.timeline_interval_s,
            &TIMELINE_COLUMNS,
        ))
    } else {
        None
    };
    let mut msa_outstanding = 0u64;
    let mut fills_outstanding = 0u64;
    let mut slo_obs: Vec<(f64, bool)> = Vec::new();
    if let Some(tl) = timeline.as_mut() {
        tl.set_many(&[0.0, 0.0, 0.0, cache.len() as f64, 0.0, 0.0, 0.0]);
    }

    if let Some(first) = requests.first() {
        engine.schedule(first.arrival_s, Event::Arrival { request: 0 });
    }

    while let Some((now, event)) = engine.pop() {
        if let Some(tl) = timeline.as_mut() {
            tl.advance_to(now);
        }
        match event {
            // Admission, cache lookup and CPU dispatch — the seed
            // scheduler's per-arrival sweep body. Arrivals are chained
            // lazily (each handler schedules the next) so every
            // readiness event carries a lower sequence number than any
            // later arrival: an MSA job finishing exactly at a future
            // arrival's timestamp pops first, reproducing the sweep's
            // inclusive `done <= arrival` fill-commit rule.
            Event::Arrival { request } => {
                let req = &requests[request];
                let shape = costs.shape(req.sample);
                if !shape.admitted {
                    outcomes.push(RequestOutcome {
                        request: *req,
                        cache_hit: false,
                        rejected: true,
                        ready_s: req.arrival_s,
                        done_s: 0.0,
                        deadline_missed: false,
                        segments: PhaseSegments::default(),
                    });
                } else {
                    let mut segments = PhaseSegments::default();
                    let coalesce = config.coalesce_misses
                        && !cache.contains(req.entity)
                        && in_flight.contains_key(&req.entity);
                    let (cache_hit, ready_s) = if coalesce {
                        // Piggyback on the in-flight fill instead of
                        // duplicating the MSA search: ready when the
                        // fill lands plus one storage-priced load.
                        cache.coalesced_hit();
                        let ready = in_flight[&req.entity] + shape.feature_load_s;
                        engine.schedule_tagged(
                            ready,
                            Event::CacheFill {
                                request,
                                entity: req.entity,
                            },
                            WaitEdge::CacheFill,
                        );
                        fills_outstanding += 1;
                        segments.cache_wait_s = ready - req.arrival_s;
                        (true, ready)
                    } else if cache.lookup(req.entity) {
                        let ready = req.arrival_s + shape.feature_load_s;
                        engine.schedule_tagged(
                            ready,
                            Event::CacheFill {
                                request,
                                entity: req.entity,
                            },
                            WaitEdge::CacheFill,
                        );
                        fills_outstanding += 1;
                        segments.cache_wait_s = ready - req.arrival_s;
                        (true, ready)
                    } else {
                        let w = workers
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                            .map(|(i, _)| i)
                            .expect("worker pool is non-empty");
                        let start = workers[w].max(req.arrival_s);
                        let done = start + shape.msa_s;
                        workers[w] = done;
                        in_flight.insert(req.entity, done);
                        let timer = engine.schedule_tagged(
                            done,
                            Event::MsaDone { request, worker: w },
                            WaitEdge::WorkerBusy,
                        );
                        if config.provenance {
                            splits.insert(
                                timer.seq(),
                                SegmentSplit {
                                    wait_s: start - req.arrival_s,
                                    service_s: done - start,
                                    compile_s: 0.0,
                                },
                            );
                        }
                        msa_outstanding += 1;
                        segments.msa_queue_wait_s = start - req.arrival_s;
                        segments.msa_service_s = done - start;
                        (false, done)
                    };
                    outcomes.push(RequestOutcome {
                        request: *req,
                        cache_hit,
                        rejected: false,
                        ready_s,
                        done_s: 0.0,
                        deadline_missed: false,
                        segments,
                    });
                    if let Some(limit) = config.deadline.limit_seconds() {
                        deadline_timers[request] = Some(engine.schedule_tagged(
                            req.arrival_s + limit,
                            Event::DeadlineExpired { request },
                            WaitEdge::Deadline,
                        ));
                    }
                }
                if request + 1 < requests.len() {
                    engine.schedule(
                        requests[request + 1].arrival_s,
                        Event::Arrival {
                            request: request + 1,
                        },
                    );
                }
            }

            // A pool worker finished: the features enter the cache and
            // the request becomes GPU-ready. The seed sweep only ever
            // committed fills that a later arrival passed, so once the
            // stream has drained (`outcomes` holds every request) the
            // insert is skipped — keeping the eviction counters
            // bit-identical to it.
            Event::MsaDone { request, .. } => {
                let req = &requests[request];
                if outcomes.len() < requests.len() {
                    cache.insert(req.entity, costs.shape(req.sample).feature_bytes);
                }
                in_flight.remove(&req.entity);
                msa_outstanding -= 1;
                pool.push(request);
                if now >= gpu_free {
                    engine.schedule_tagged(now, Event::BatchClose, WaitEdge::BatchClose);
                }
            }

            // A cached (or coalesced) feature load finished — the
            // request becomes GPU-ready.
            Event::CacheFill { request, .. } => {
                fills_outstanding -= 1;
                pool.push(request);
                if now >= gpu_free {
                    engine.schedule_tagged(now, Event::BatchClose, WaitEdge::BatchClose);
                }
            }

            // The GPU takes everything ready by `now`, up to B — the
            // seed scheduler's greedy batch body, priced and traced
            // with the identical expressions so floats and span order
            // match bit-for-bit. A close always pops after every
            // same-timestamp readiness event (higher sequence number),
            // so the pool is complete; duplicate closes fall through
            // the guard.
            Event::BatchClose => {
                if pool.is_empty() || now < gpu_free {
                    continue;
                }
                pool.sort_by(|&a, &b| {
                    outcomes[a]
                        .ready_s
                        .partial_cmp(&outcomes[b].ready_s)
                        .unwrap()
                        .then(outcomes[a].request.id.cmp(&outcomes[b].request.id))
                });
                let start = gpu_free.max(outcomes[pool[0]].ready_s);
                let mut take = 1usize;
                while take < config.gpu_batch
                    && take < pool.len()
                    && outcomes[pool[take]].ready_s <= start
                {
                    take += 1;
                }
                let batch: Vec<usize> = pool.drain(..take).collect();

                // Price the batch first so the enclosing span carries
                // its full duration when created, then lay the child
                // spans end to end.
                let pay_init = !inited;
                let new_shapes: Vec<SampleId> = batch
                    .iter()
                    .map(|&idx| outcomes[idx].request.sample)
                    .filter(|&s| compiled.insert(s))
                    .collect();
                let service = if pay_init { costs.init_s } else { 0.0 }
                    + costs.dispatch_s
                    + new_shapes
                        .iter()
                        .map(|&s| costs.shape(s).compile_s)
                        .sum::<f64>()
                    + batch
                        .iter()
                        .map(|&idx| costs.shape(outcomes[idx].request.sample).compute_s)
                        .sum::<f64>();
                let done = start + service;

                let batch_span = obs.tracer.closed_span("gpu_batch", start, service);
                let mut at = start;
                if pay_init {
                    inited = true;
                    obs.tracer.child_span(batch_span, "init", at, costs.init_s);
                    at += costs.init_s;
                }
                obs.tracer
                    .child_span(batch_span, "dispatch", at, costs.dispatch_s);
                at += costs.dispatch_s;
                let compile_begin = at;
                for &s in &new_shapes {
                    obs.tracer
                        .child_span(batch_span, "xla_compile", at, costs.shape(s).compile_s);
                    at += costs.shape(s).compile_s;
                }
                let compile_end = at;
                for &idx in &batch {
                    let shape = costs.shape(outcomes[idx].request.sample);
                    obs.tracer
                        .child_span(batch_span, "gpu_compute", at, shape.compute_s);
                    at += shape.compute_s;
                }
                debug_assert!((at - done).abs() < 1e-9);
                for &idx in &batch {
                    outcomes[idx].done_s = done;
                    let o = &mut outcomes[idx];
                    o.segments.batch_wait_s += start - o.ready_s;
                    o.segments.xla_compile_s += compile_end - compile_begin;
                    o.segments.close(o.done_s - o.request.arrival_s);
                    outcomes[idx].deadline_missed =
                        config.deadline.exceeded(outcomes[idx].latency_s());
                    if config.telemetry.slo.is_some() {
                        slo_obs.push((done, !outcomes[idx].deadline_missed));
                    }
                    // A met deadline disarms its timer; a missed one is
                    // left to fire (the completion already re-derived
                    // the flag with the seed expression, so the timer
                    // is redundant but harmless).
                    if !outcomes[idx].deadline_missed {
                        if let Some(timer) = deadline_timers[idx].take() {
                            engine.cancel(timer);
                        }
                    }
                }
                gpu_busy += done - start;
                gpu_free = done;
                batches += 1;
                let timer = engine.schedule_tagged(
                    done,
                    Event::GpuDone { batch: batches },
                    WaitEdge::GpuBusy,
                );
                if config.provenance {
                    // The gpu-busy edge spans from this batch close to
                    // the dispatch completing: queueing behind the
                    // previous batch, then service, of which the
                    // one-time compiles are separable.
                    let compile_total = compile_end - compile_begin;
                    splits.insert(
                        timer.seq(),
                        SegmentSplit {
                            wait_s: start - now,
                            service_s: (done - start) - compile_total,
                            compile_s: compile_total,
                        },
                    );
                    for &idx in &batch {
                        completions[idx] = Some(timer.seq());
                    }
                    if best_done.is_none_or(|(t, _)| done >= t) {
                        best_done = Some((done, timer.seq()));
                    }
                }
            }

            // The GPU freed up: if anything queued meanwhile, close the
            // next batch immediately.
            Event::GpuDone { .. } if !pool.is_empty() => {
                engine.schedule_tagged(now, Event::BatchClose, WaitEdge::BatchClose);
            }

            // An armed deadline elapsed without being cancelled. For
            // requests still queued the completion handler later
            // re-derives the flag; for ones already served past their
            // budget this confirms the same value.
            Event::DeadlineExpired { request } => {
                outcomes[request].deadline_missed = true;
            }

            // Defense in depth: the fault-free server schedules none of
            // the remaining vocabulary (`Fault`, `Requeue`,
            // `BreakerClose`), but an unknown event must never abort a
            // simulation — it is ignored, exactly like the frozen seed
            // scheduler ([`crate::reference`]) which never sees events
            // at all. The chaos-enabled loop ([`crate::chaos`]) handles
            // these for real.
            _ => {}
        }
        if let Some(tl) = timeline.as_mut() {
            tl.set_many(&[
                msa_outstanding as f64,
                workers.iter().filter(|&&t| t > now).count() as f64,
                if gpu_free > now { 1.0 } else { 0.0 },
                cache.len() as f64,
                cache.hit_rate(),
                fills_outstanding as f64,
                0.0,
            ]);
        }
    }

    // Fold the outcomes into the report + metrics.
    let last_arrival = requests.last().map_or(0.0, |r| r.arrival_s);
    let makespan_s = outcomes
        .iter()
        .filter(|o| !o.rejected)
        .map(|o| o.done_s)
        .fold(last_arrival, f64::max);
    let served = outcomes.iter().filter(|o| !o.rejected).count();
    let rejected = outcomes.len() - served;
    let deadline_missed = outcomes.iter().filter(|o| o.deadline_missed).count();
    let throughput_qph = if makespan_s > 0.0 {
        served as f64 / makespan_s * 3600.0
    } else {
        0.0
    };
    let gpu_occupancy = if makespan_s > 0.0 {
        gpu_busy / makespan_s
    } else {
        0.0
    };

    let mut latency_hist = Histogram::new(&LATENCY_BOUNDS);
    for o in outcomes.iter().filter(|o| !o.rejected) {
        latency_hist.observe(o.latency_s());
        obs.metrics
            .observe("serve.latency_s", o.latency_s(), &LATENCY_BOUNDS);
    }

    obs.tracer.advance(makespan_s);
    obs.tracer.end();

    if let Some(tl) = timeline.as_mut() {
        tl.finish(makespan_s);
    }
    let slo = config.telemetry.slo.map(|slo_config| {
        let mut monitor = SloMonitor::new(slo_config);
        for &(t, good) in &slo_obs {
            monitor.observe(t, good);
        }
        let outcome = monitor.evaluate();
        for tr in &outcome.transitions {
            obs.tracer
                .instant_at(tr.at_s, if tr.firing { "slo:burn" } else { "slo:clear" });
            obs.tracer.instant_attr("burn", tr.burn);
        }
        let m = &mut obs.metrics;
        m.inc("slo.burn_events", outcome.burn_events);
        m.inc("slo.clear_events", outcome.clear_events);
        m.set_gauge("slo.max_burn", outcome.max_burn);
        m.set_gauge("slo.alert_seconds", outcome.alert_seconds);
        outcome
    });

    let m = &mut obs.metrics;
    m.inc("serve.requests", requests.len() as u64);
    m.inc("serve.served", served as u64);
    m.inc("serve.rejected", rejected as u64);
    m.inc("serve.deadline_missed", deadline_missed as u64);
    m.inc("serve.cache.hits", cache.hits());
    m.inc("serve.cache.misses", cache.misses());
    m.inc("serve.cache.evictions", cache.evictions());
    if config.coalesce_misses {
        m.inc("serve.cache.coalesced", cache.coalesced());
    }
    m.inc("serve.gpu.batches", batches as u64);
    m.inc("serve.gpu.compiled_shapes", compiled.len() as u64);
    m.set_gauge("serve.throughput_qph", throughput_qph);
    m.set_gauge("serve.makespan_s", makespan_s);
    m.set_gauge("serve.gpu.occupancy", gpu_occupancy);
    m.set_gauge("serve.cache.hit_rate", cache.hit_rate());

    let causal = if config.provenance {
        Some(CausalLog {
            edges: engine.provenance().to_vec(),
            makespan_event: best_done.map(|(_, seq)| seq),
            completions,
            splits,
        })
    } else {
        None
    };

    ServeReport {
        config: *config,
        served,
        rejected,
        deadline_missed,
        makespan_s,
        throughput_qph,
        gpu_busy_s: gpu_busy,
        gpu_occupancy,
        batches,
        compiled_shapes: compiled.len(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        cache_evictions: cache.evictions(),
        cache_hit_rate: cache.hit_rate(),
        cache_coalesced: cache.coalesced(),
        latency: latency_hist.summary(),
        timeline,
        slo,
        causal,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-priced cost table: MSA dominates (minutes) while the GPU
    /// serves in seconds — the paper's §III shape.
    fn synthetic_costs() -> CostTable {
        let mut shapes = BTreeMap::new();
        for (k, &id) in SampleId::all().iter().enumerate() {
            shapes.insert(
                id,
                ShapeCost {
                    msa_s: 120.0 + 30.0 * k as f64,
                    feature_bytes: 10 << 20,
                    feature_load_s: 0.1,
                    peak_msa_bytes: 1 << 30,
                    admitted: true,
                    compile_s: 20.0,
                    compute_s: 25.0 + k as f64,
                },
            );
        }
        CostTable {
            platform: Platform::Server,
            msa_threads: 4,
            init_s: 30.0,
            dispatch_s: 1.5,
            shapes,
        }
    }

    fn base_config() -> ServeConfig {
        ServeConfig {
            workload: WorkloadConfig {
                num_requests: 48,
                catalog_size: 10,
                arrival_rate_per_s: 0.1,
                zipf_exponent: 1.1,
                seed: 17,
            },
            ..ServeConfig::default()
        }
    }

    fn run(config: &ServeConfig) -> ServeReport {
        run_serve(config, &synthetic_costs(), &mut ObsSession::new())
    }

    #[test]
    fn run_is_deterministic_including_trace_and_metrics() {
        let cfg = base_config();
        let mut a_obs = ObsSession::new();
        let mut b_obs = ObsSession::new();
        let a = run_serve(&cfg, &synthetic_costs(), &mut a_obs);
        let b = run_serve(&cfg, &synthetic_costs(), &mut b_obs);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(
            a_obs.metrics.render_text(),
            b_obs.metrics.render_text(),
            "metrics must replay byte-identically"
        );
    }

    #[test]
    fn caching_strictly_increases_throughput() {
        let with_cache = run(&base_config());
        let no_cache = run(&ServeConfig {
            cache_capacity_bytes: 0,
            ..base_config()
        });
        assert!(with_cache.cache_hit_rate > no_cache.cache_hit_rate);
        assert_eq!(no_cache.cache_hits, 0);
        assert!(
            with_cache.throughput_qph > no_cache.throughput_qph,
            "cache hits must strictly raise queries/hour: {} vs {}",
            with_cache.throughput_qph,
            no_cache.throughput_qph
        );
    }

    #[test]
    fn bigger_gpu_batches_strictly_increase_throughput_under_backlog() {
        // Steady-state serving: everything hits the cache, so the GPU is
        // the bottleneck and batching amortizes the dispatch setup.
        let warm = ServeConfig {
            prewarm_cache: true,
            ..base_config()
        };
        let b1 = run(&ServeConfig {
            gpu_batch: 1,
            ..warm
        });
        let b4 = run(&ServeConfig {
            gpu_batch: 4,
            ..warm
        });
        let b8 = run(&ServeConfig {
            gpu_batch: 8,
            ..warm
        });
        assert!(
            b4.throughput_qph > b1.throughput_qph,
            "B=4 {} vs B=1 {}",
            b4.throughput_qph,
            b1.throughput_qph
        );
        assert!(
            b8.throughput_qph >= b4.throughput_qph,
            "B=8 {} vs B=4 {}",
            b8.throughput_qph,
            b4.throughput_qph
        );
        assert!(b4.batches < b1.batches);
    }

    #[test]
    fn compile_paid_once_per_shape_and_init_once() {
        let r = run(&ServeConfig {
            prewarm_cache: true,
            ..base_config()
        });
        assert!(r.compiled_shapes <= SampleId::all().len());
        assert!(r.batches > 0);
        // Total GPU busy accounts one init, one compile per shape, one
        // dispatch per batch and one compute per request.
        let costs = synthetic_costs();
        let expected: f64 = costs.init_s
            + r.batches as f64 * costs.dispatch_s
            + costs
                .shapes
                .iter()
                .filter(|(id, _)| r.outcomes.iter().any(|o| o.request.sample == **id))
                .map(|(_, s)| s.compile_s)
                .sum::<f64>()
            + r.outcomes
                .iter()
                .filter(|o| !o.rejected)
                .map(|o| costs.shape(o.request.sample).compute_s)
                .sum::<f64>();
        assert!(
            (r.gpu_busy_s - expected).abs() < 1e-6,
            "gpu busy {} vs expected {expected}",
            r.gpu_busy_s
        );
    }

    #[test]
    fn coalescing_concurrent_misses_improves_hit_rate_and_throughput() {
        // Cold cache + slow MSA: popular entities miss repeatedly while
        // the first fill is still in flight, so coalescing turns the
        // duplicate searches into waits on the in-flight fill.
        let off = run(&base_config());
        let on = run(&ServeConfig {
            coalesce_misses: true,
            ..base_config()
        });
        assert_eq!(off.cache_coalesced, 0);
        assert!(on.cache_coalesced > 0, "no concurrent misses to coalesce");
        assert!(
            on.cache_hit_rate > off.cache_hit_rate,
            "hit rate must improve: {} vs {}",
            on.cache_hit_rate,
            off.cache_hit_rate
        );
        assert!(
            on.throughput_qph > off.throughput_qph,
            "qph must improve: {} vs {}",
            on.throughput_qph,
            off.throughput_qph
        );
        assert!(on.render().contains("coalesced"));

        // Steady state (prewarmed cache) has no misses to coalesce:
        // the flag must be a no-op there.
        let warm = ServeConfig {
            prewarm_cache: true,
            ..base_config()
        };
        let warm_on = run(&ServeConfig {
            coalesce_misses: true,
            ..warm
        });
        let warm_off = run(&warm);
        assert_eq!(warm_on.cache_coalesced, 0);
        assert_eq!(warm_on.outcomes, warm_off.outcomes);
    }

    #[test]
    fn admission_rejects_unadmitted_shapes() {
        let mut costs = synthetic_costs();
        for shape in costs.shapes.values_mut() {
            shape.admitted = false;
        }
        let r = run_serve(&base_config(), &costs, &mut ObsSession::new());
        assert_eq!(r.served, 0);
        assert_eq!(r.rejected, r.outcomes.len());
        assert_eq!(r.throughput_qph, 0.0);
        assert!(r.latency.is_none());
        assert!(r.render().contains("n/a"));
    }

    #[test]
    fn deadlines_flag_slow_requests() {
        let tight = run(&ServeConfig {
            deadline: Deadline::new(Some(1.0)),
            ..base_config()
        });
        assert_eq!(
            tight.deadline_missed, tight.served,
            "a 1 s deadline must flag every served request"
        );
        let loose = run(&ServeConfig {
            deadline: Deadline::new(None),
            ..base_config()
        });
        assert_eq!(loose.deadline_missed, 0);
    }

    #[test]
    fn cache_inserts_respect_completion_time_causality() {
        // Two requests for the same entity arriving before the first
        // one's MSA completes must both miss; a third arriving after
        // must hit.
        let cfg = ServeConfig {
            workload: WorkloadConfig {
                num_requests: 128,
                catalog_size: 4,
                arrival_rate_per_s: 0.2,
                zipf_exponent: 2.0,
                ..WorkloadConfig::default()
            },
            ..base_config()
        };
        let r = run(&cfg);
        for o in r.outcomes.iter().filter(|o| o.cache_hit) {
            // Some earlier request for the same entity finished its MSA
            // (or the features were already present) strictly before
            // this arrival.
            let producer = r.outcomes.iter().any(|p| {
                p.request.entity == o.request.entity
                    && !p.cache_hit
                    && p.ready_s <= o.request.arrival_s
            });
            let chained = r.outcomes.iter().any(|p| {
                p.request.entity == o.request.entity && p.cache_hit && p.request.id < o.request.id
            });
            assert!(
                producer || chained,
                "hit without a completed producer: {:?}",
                o.request
            );
        }
        // And with this much repetition there are real hits to check.
        assert!(r.cache_hits > 0);
    }
}
