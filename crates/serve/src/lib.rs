//! `afsb-serve`: a deterministic multi-query serving simulator.
//!
//! The paper characterizes one query at a time; this crate turns that
//! single-run model into the serving system its own data points at.
//! MSA dominates end-to-end latency (§III), while `xla_compile` and
//! runtime init amortize across runs (Fig. 8 / Table V) — so a server
//! that (a) caches MSA features for repeated entities and (b) keeps a
//! warm GPU session forming batches pays the dominant costs once
//! instead of per request:
//!
//! - [`workload`]: a seeded request-arrival generator over the
//!   benchmark samples — Poisson arrivals, Zipf-like entity repetition
//!   (popular complexes recur, as in PPI screening),
//! - [`cache`]: a content-addressed, capacity-bounded LRU cache of MSA
//!   feature files — a hit skips the entire CPU phase and charges only
//!   a storage-priced feature load,
//! - [`server`]: the phase-decoupled scheduler — a CPU worker pool
//!   drains MSA jobs while the GPU queue forms inference batches of
//!   size B, paying `xla_compile` once per shape and runtime init once
//!   per process (reusing `gpu::runtime`'s cold/warm split), with
//!   per-request [`afsb_core::resilience::Deadline`]s and the §VI
//!   admission check,
//! - [`scenario`]: the canonical scenario set behind `afsysbench
//!   serve` and the `profile serve` baseline,
//! - [`reference`]: the frozen seed step-scan scheduler, kept verbatim
//!   as the byte-equivalence oracle for the event-driven [`server`],
//! - [`chaos`]: the fault-tolerant twin of the server — `rt::fault`
//!   plans delivered into the serving event loop, answered by a
//!   recovery policy (requeue with backoff, circuit breaker, deadline
//!   shedding, overload degradation), every admitted request ending in
//!   exactly one disposition; with an empty plan it is byte-identical
//!   to [`server`],
//! - [`whatif`]: the causal profiler's projection engine — virtual
//!   speedups (MSA ×k, GPU ×k, XLA ×k, +N workers, infinite cache)
//!   replayed Coz-style over the provenance DAG the engine recorded,
//!   each prediction validated against a ground-truth re-run with
//!   scaled cost tables (`rt::obs::causal` extracts the critical path
//!   and blame shares the projections are built on).
//!
//! Everything runs on the simulated clock: the same seed yields
//! byte-identical reports, metrics and traces.

pub mod cache;
pub mod chaos;
pub mod reference;
pub mod scenario;
pub mod server;
pub mod telemetry;
pub mod whatif;
pub mod workload;

pub use cache::FeatureCache;
pub use chaos::{
    chaos_scenarios, render_chaos_summary, run_chaos, run_chaos_telemetry, run_serve_chaos,
    ChaosConfig, ChaosReport, ChaosScenario, ChaosScenarioRun, Disposition, RecoveryPolicy,
};
pub use reference::run_serve_reference;
pub use scenario::{
    default_scenarios, render_summary, run_default, run_default_telemetry, run_xl, xl_scenarios,
    Scenario, ScenarioRun,
};
pub use server::{
    run_serve, CausalLog, CostTable, PhaseSegments, RequestOutcome, SegmentSplit, ServeConfig,
    ServeReport, TelemetryConfig, TIMELINE_COLUMNS,
};
pub use telemetry::{
    render_telemetry, render_timeline_block, run_brownout_telemetry, run_telemetry,
    TelemetryReport, TELEMETRY_CHAOS_SCENARIO,
};
pub use whatif::{
    canonical_whatifs, predict_makespan, render_whatif, run_whatif, WhatIf, WhatIfReport,
    WhatIfRow, WHATIF_OFF_PATH_DELTA_PP, WHATIF_ON_PATH_SHARE, WHATIF_ON_PATH_TOLERANCE_PP,
};
pub use workload::{generate, Request, WorkloadConfig};
