//! The chaos-serving gates.
//!
//! 1. **Passive byte-identity** (permanent golden gate, same style as
//!    `tests/equivalence.rs`): with an empty [`FaultPlan`] the
//!    chaos-enabled loop must match the fault-free engine byte for
//!    byte — outcomes, float bits, report text, metrics text and
//!    Chrome trace — on the canonical scenarios and a synthetic edge
//!    sweep. Transitively (via `tests/equivalence.rs`) that pins it to
//!    the frozen seed scheduler too.
//! 2. **Request conservation** under seeded fault sweeps: every
//!    admitted request ends in exactly one disposition
//!    (completed | degraded | shed | failed). `AFSB_CHAOS_SEED`
//!    overrides the sweep with a single externally-chosen seed so CI
//!    can fan out.
//! 3. **Coalesced-miss × fault interaction**: killing or stalling a
//!    producer with piggybacked waiters wakes every waiter exactly
//!    once — no lost wakeups (every finished request was batched), no
//!    double wakeups (no request is batched twice), no double-charged
//!    fills (waiters never occupy a CPU worker).

use afsb_core::resilience::Deadline;
use afsb_rt::fault::{FaultKind, FaultPlan};
use afsb_rt::obs::ObsSession;
use afsb_seq::samples::SampleId;
use afsb_serve::chaos::{run_serve_chaos, ChaosConfig, ChaosReport, Disposition, RecoveryPolicy};
use afsb_serve::scenario::{default_scenarios, SERVE_SEED};
use afsb_serve::server::{run_serve, CostTable, ServeConfig, ShapeCost};
use afsb_serve::workload::WorkloadConfig;
use afsb_simarch::Platform;
use std::collections::BTreeMap;

/// Hand-priced costs (MSA in minutes, GPU in seconds — the paper's
/// §III shape), mirroring the equivalence suite.
fn synthetic_costs() -> CostTable {
    let mut shapes = BTreeMap::new();
    for (k, &id) in SampleId::all().iter().enumerate() {
        shapes.insert(
            id,
            ShapeCost {
                msa_s: 120.0 + 30.0 * k as f64,
                feature_bytes: 10 << 20,
                feature_load_s: 0.1,
                peak_msa_bytes: 1 << 30,
                admitted: true,
                compile_s: 20.0,
                compute_s: 25.0 + k as f64,
            },
        );
    }
    CostTable {
        platform: Platform::Server,
        msa_threads: 4,
        init_s: 30.0,
        dispatch_s: 1.5,
        shapes,
    }
}

fn base_config() -> ServeConfig {
    ServeConfig {
        workload: WorkloadConfig {
            num_requests: 96,
            catalog_size: 8,
            arrival_rate_per_s: 0.2,
            zipf_exponent: 1.1,
            seed: 23,
        },
        ..ServeConfig::default()
    }
}

/// Assert the chaos loop under an *empty plan* agrees with the
/// fault-free engine down to the bytes.
fn assert_passive_identical(name: &str, config: &ServeConfig, costs: &CostTable) {
    let mut chaos_obs = ObsSession::new();
    let mut plain_obs = ObsSession::new();
    let chaos = run_serve_chaos(config, &ChaosConfig::none(), costs, &mut chaos_obs);
    let plain = run_serve(config, costs, &mut plain_obs);

    assert_eq!(
        chaos.base.outcomes, plain.outcomes,
        "{name}: outcomes diverged"
    );
    assert_eq!(
        chaos.base.makespan_s.to_bits(),
        plain.makespan_s.to_bits(),
        "{name}: makespan not bit-identical"
    );
    assert_eq!(
        chaos.base.throughput_qph.to_bits(),
        plain.throughput_qph.to_bits(),
        "{name}: throughput not bit-identical"
    );
    assert_eq!(
        chaos.base.gpu_busy_s.to_bits(),
        plain.gpu_busy_s.to_bits(),
        "{name}: gpu busy not bit-identical"
    );
    assert_eq!(
        chaos.render(),
        plain.render(),
        "{name}: report text diverged (chaos block must be absent)"
    );
    assert_eq!(
        chaos_obs.metrics.render_text(),
        plain_obs.metrics.render_text(),
        "{name}: metrics text diverged"
    );
    assert_eq!(
        chaos_obs.tracer.chrome_trace_events().pretty(),
        plain_obs.tracer.chrome_trace_events().pretty(),
        "{name}: Chrome trace diverged"
    );
    // Dispositions are still assigned in passive mode: every admitted
    // request completes at full quality.
    assert!(chaos.conserves_requests(), "{name}: conservation broken");
    assert!(!chaos.chaos_active);
    assert_eq!(
        chaos.completed, chaos.admitted,
        "{name}: passive run degraded/shed/failed"
    );
    assert!(chaos.fault_events.is_empty());
}

#[test]
fn empty_plan_matches_the_fault_free_engine_on_canonical_scenarios() {
    let costs = CostTable::build(Platform::Server, true, 4, SERVE_SEED);
    for scenario in default_scenarios(true) {
        assert_passive_identical(scenario.name, &scenario.config, &costs);
    }
}

#[test]
fn empty_plan_matches_the_fault_free_engine_on_edge_configurations() {
    let base = base_config();
    let cases: Vec<(&str, ServeConfig)> = vec![
        ("base", base),
        (
            "nocache",
            ServeConfig {
                cache_capacity_bytes: 0,
                ..base
            },
        ),
        (
            "coalescing",
            ServeConfig {
                coalesce_misses: true,
                ..base
            },
        ),
        (
            "prewarmed_b1",
            ServeConfig {
                prewarm_cache: true,
                gpu_batch: 1,
                ..base
            },
        ),
        (
            "one_worker",
            ServeConfig {
                cpu_workers: 1,
                ..base
            },
        ),
        (
            "tight_deadline",
            ServeConfig {
                deadline: Deadline::new(Some(1.0)),
                ..base
            },
        ),
        (
            "no_deadline",
            ServeConfig {
                deadline: Deadline::new(None),
                ..base
            },
        ),
    ];
    for (name, config) in &cases {
        assert_passive_identical(name, config, &synthetic_costs());
    }
}

/// Count `gpu_compute` spans in the Chrome trace: one per batched
/// request, so a double wakeup (request batched twice) shows up as a
/// surplus and a lost wakeup as a deficit.
fn gpu_compute_spans(obs: &ObsSession) -> usize {
    obs.tracer
        .chrome_trace_events()
        .pretty()
        .matches("gpu_compute")
        .count()
}

/// Full structural audit of one chaos run.
fn assert_well_formed(name: &str, report: &ChaosReport, obs: &ObsSession, plan_len: usize) {
    assert!(
        report.conserves_requests(),
        "{name}: admitted {} != {} completed + {} degraded + {} shed + {} failed",
        report.admitted,
        report.completed,
        report.degraded,
        report.shed,
        report.failed
    );
    assert_eq!(
        report.fault_events.len(),
        plan_len,
        "{name}: every planned fault must be delivered exactly once"
    );
    // No lost or double wakeups: finished requests hit the GPU exactly
    // once each.
    assert_eq!(
        gpu_compute_spans(obs),
        report.completed + report.degraded,
        "{name}: finished requests and GPU computes disagree"
    );
    for (i, (d, o)) in report
        .dispositions
        .iter()
        .zip(&report.base.outcomes)
        .enumerate()
    {
        match d {
            None => assert!(o.rejected, "request {i}: no disposition but admitted"),
            Some(Disposition::Completed) | Some(Disposition::Degraded) => {
                assert!(
                    o.done_s > 0.0,
                    "{name}: request {i} finished without a completion time"
                );
                assert!(
                    o.ready_s <= o.done_s,
                    "{name}: request {i} ready after done"
                );
            }
            Some(Disposition::Shed) => {
                assert!(o.deadline_missed, "{name}: request {i} shed without expiry");
                assert_eq!(o.done_s, 0.0, "{name}: shed request {i} completed anyway");
            }
            Some(Disposition::Failed) => {
                assert_eq!(o.done_s, 0.0, "{name}: failed request {i} completed anyway");
            }
        }
    }
}

/// Sweep seeds, or a single seed from `AFSB_CHAOS_SEED` (CI fans out
/// over several).
fn sweep_seeds() -> Vec<u64> {
    match std::env::var("AFSB_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("AFSB_CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 22, 33, 44, 55],
    }
}

#[test]
fn seeded_fault_sweeps_conserve_every_request() {
    let costs = synthetic_costs();
    for seed in sweep_seeds() {
        let chaos = ChaosConfig {
            plan: FaultPlan::seeded(seed),
            policy: RecoveryPolicy::standard(),
        };
        for (name, config) in [
            ("loose", base_config()),
            (
                "tight",
                ServeConfig {
                    deadline: Deadline::new(Some(600.0)),
                    ..base_config()
                },
            ),
            (
                "coalescing",
                ServeConfig {
                    coalesce_misses: true,
                    ..base_config()
                },
            ),
        ] {
            let mut obs = ObsSession::new();
            let report = run_serve_chaos(&config, &chaos, &costs, &mut obs);
            assert_well_formed(
                &format!("seed {seed}/{name}"),
                &report,
                &obs,
                chaos.plan.faults().len(),
            );
        }
    }
}

#[test]
fn one_chaos_config_drives_many_runs_without_double_firing() {
    // The serving-level face of `FaultInjector::sync_to`'s contract: a
    // long-lived plan must deliver the identical fault sequence to
    // every run, because each run builds a fresh injector.
    let costs = synthetic_costs();
    let chaos = ChaosConfig {
        plan: FaultPlan::none()
            .with_at(FaultKind::WorkerCrash { at_fraction: 0.4 }, 60.0)
            .with_at(
                FaultKind::StorageStall {
                    stall_seconds: 45.0,
                },
                120.0,
            )
            .with_at(FaultKind::GpuInitFailure, 200.0),
        policy: RecoveryPolicy::standard(),
    };
    let mut first_obs = ObsSession::new();
    let first = run_serve_chaos(&base_config(), &chaos, &costs, &mut first_obs);
    let mut second_obs = ObsSession::new();
    let second = run_serve_chaos(&base_config(), &chaos, &costs, &mut second_obs);
    assert_eq!(
        first.fault_events.len(),
        chaos.plan.faults().len(),
        "run 1 must fire each planned fault once"
    );
    assert_eq!(
        first.fault_events, second.fault_events,
        "run 2 must see the identical fault sequence, not a doubled or empty one"
    );
    assert_eq!(first.base.outcomes, second.base.outcomes);
    assert_eq!(first.render(), second.render());
    assert_eq!(
        first_obs.metrics.render_text(),
        second_obs.metrics.render_text()
    );
}

/// A stream shaped to keep coalesced fills in flight almost constantly:
/// fast arrivals over a tiny, highly skewed catalog.
fn coalescing_config() -> ServeConfig {
    ServeConfig {
        workload: WorkloadConfig {
            num_requests: 64,
            catalog_size: 4,
            arrival_rate_per_s: 0.5,
            zipf_exponent: 2.0,
            seed: 23,
        },
        coalesce_misses: true,
        ..ServeConfig::default()
    }
}

#[test]
fn killing_a_producer_wakes_coalesced_waiters_exactly_once() {
    let costs = synthetic_costs();
    // The crash lands mid-MSA while later arrivals for the same hot
    // entity are piggybacked on the in-flight fill.
    let chaos = ChaosConfig {
        plan: FaultPlan::none().with_at(FaultKind::WorkerCrash { at_fraction: 0.0 }, 30.0),
        policy: RecoveryPolicy::standard(),
    };
    let mut obs = ObsSession::new();
    let report = run_serve_chaos(&coalescing_config(), &chaos, &costs, &mut obs);
    assert!(
        report.base.cache_coalesced > 0,
        "scenario must actually coalesce misses"
    );
    assert!(report.requeues > 0, "the killed producer must requeue");
    assert_well_formed("producer-kill", &report, &obs, 1);
    // No double-charged fills: waiters stay cache hits (they never
    // occupy a CPU worker), so misses equal the fault-free run's.
    let mut baseline_obs = ObsSession::new();
    let baseline = run_serve_chaos(
        &coalescing_config(),
        &ChaosConfig::none(),
        &costs,
        &mut baseline_obs,
    );
    assert_eq!(
        report.base.cache_misses, baseline.base.cache_misses,
        "a kill must not convert waiters into duplicate MSA searches"
    );
}

#[test]
fn storage_faults_during_coalesced_fills_wake_waiters_exactly_once() {
    let costs = synthetic_costs();
    for (name, plan) in [
        (
            "stall",
            FaultPlan::none().with_at(
                FaultKind::StorageStall {
                    stall_seconds: 90.0,
                },
                150.0,
            ),
        ),
        (
            "read-error",
            FaultPlan::none().with_at(FaultKind::StorageReadError, 150.0),
        ),
        (
            "stall+crash",
            FaultPlan::none()
                .with_at(FaultKind::WorkerCrash { at_fraction: 0.0 }, 30.0)
                .with_at(
                    FaultKind::StorageStall {
                        stall_seconds: 60.0,
                    },
                    140.0,
                )
                .with_at(FaultKind::StorageReadError, 300.0),
        ),
    ] {
        let chaos = ChaosConfig {
            plan,
            policy: RecoveryPolicy::standard(),
        };
        let plan_len = chaos.plan.faults().len();
        let mut obs = ObsSession::new();
        let report = run_serve_chaos(&coalescing_config(), &chaos, &costs, &mut obs);
        assert!(report.base.cache_coalesced > 0, "{name}: nothing coalesced");
        assert_well_formed(name, &report, &obs, plan_len);
    }
}

#[test]
fn seeded_fault_schedules_over_coalescing_streams_conserve_wakeups() {
    // The satellite's property sweep: random fault schedules over a
    // coalescing-heavy stream, with both loose and tight deadlines.
    let costs = synthetic_costs();
    for seed in sweep_seeds() {
        let chaos = ChaosConfig {
            plan: FaultPlan::seeded(seed),
            policy: RecoveryPolicy::standard(),
        };
        for (name, config) in [
            ("loose", coalescing_config()),
            (
                "tight",
                ServeConfig {
                    deadline: Deadline::new(Some(400.0)),
                    ..coalescing_config()
                },
            ),
        ] {
            let mut obs = ObsSession::new();
            let report = run_serve_chaos(&config, &chaos, &costs, &mut obs);
            assert_well_formed(
                &format!("coalesce seed {seed}/{name}"),
                &report,
                &obs,
                chaos.plan.faults().len(),
            );
        }
    }
}

#[test]
fn canonical_chaos_matrix_holds_its_slo_orderings() {
    // The `serve-chaos` acceptance gate: on the canonical quick matrix
    // every scenario conserves its requests and keeps serving, each
    // planned fault is delivered exactly once, and the SLO metrics
    // order strictly — the fault-free baseline beats every chaos
    // scenario and every single-dimension scenario beats the
    // kitchen sink, on both availability and goodput.
    let scenarios = afsb_serve::chaos_scenarios(true);
    let runs = afsb_serve::run_chaos(true);
    assert_eq!(runs.len(), scenarios.len());
    let by = |name: &str| {
        runs.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("scenario {name} ran"))
    };

    for s in &scenarios {
        let run = by(s.name);
        let r = &run.report;
        assert!(r.conserves_requests(), "{} conserves requests", s.name);
        assert!(r.completed > 0, "{} still completes work", s.name);
        assert_eq!(
            r.fault_events.len(),
            s.chaos.plan.faults().len(),
            "{} delivers every planned fault exactly once",
            s.name
        );
        // Every delivered fault leaves its instant in the trace.
        let trace = run.obs.tracer.chrome_trace_events().pretty();
        for f in s.chaos.plan.faults() {
            assert!(
                trace.contains(&format!("fault:{}", f.kind.label())),
                "{} trace records fault:{}",
                s.name,
                f.kind.label()
            );
        }
    }

    let baseline = &by("baseline").report;
    assert!(!baseline.chaos_active);
    assert!(baseline.fault_events.is_empty());
    let sink = &by("kitchen-sink").report;
    for name in ["worker-churn", "storage-brownout", "gpu-flap"] {
        let r = &by(name).report;
        assert!(
            r.availability < baseline.availability,
            "baseline availability beats {name}"
        );
        assert!(
            r.goodput < baseline.goodput,
            "baseline goodput beats {name}"
        );
        assert!(
            sink.availability < r.availability,
            "{name} availability beats the kitchen sink"
        );
        assert!(
            sink.goodput < r.goodput,
            "{name} goodput beats the kitchen sink"
        );
    }

    // The rendered summary names every scenario exactly once.
    let summary = afsb_serve::render_chaos_summary(&runs);
    for s in &scenarios {
        assert_eq!(summary.matches(s.name).count(), 2, "{} in summary", s.name);
    }
}
