//! End-to-end serving acceptance: the canonical scenarios on the real
//! (quick-scale) cost table must replay byte-identically and must show
//! the two amortization wins the layer exists to demonstrate.

use afsb_serve::scenario::{render_summary, run_default, ScenarioRun};
use std::sync::OnceLock;

fn runs() -> &'static Vec<ScenarioRun> {
    static RUNS: OnceLock<Vec<ScenarioRun>> = OnceLock::new();
    RUNS.get_or_init(|| run_default(true))
}

fn qph(name: &str) -> f64 {
    runs()
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("scenario {name} missing"))
        .report
        .throughput_qph
}

#[test]
fn same_seed_replays_byte_identically() {
    let again = run_default(true);
    assert_eq!(render_summary(runs()), render_summary(&again));
    for (a, b) in runs().iter().zip(&again) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.report.outcomes, b.report.outcomes);
        assert_eq!(
            a.obs.metrics.render_text(),
            b.obs.metrics.render_text(),
            "{}: metrics must replay byte-identically",
            a.name
        );
    }
}

#[test]
fn feature_cache_strictly_raises_throughput() {
    assert!(
        qph("cold") > qph("nocache"),
        "cold {} vs nocache {}",
        qph("cold"),
        qph("nocache")
    );
}

#[test]
fn gpu_batching_strictly_raises_throughput() {
    assert!(
        qph("warm") > qph("warm_b1"),
        "warm {} vs warm_b1 {}",
        qph("warm"),
        qph("warm_b1")
    );
}

#[test]
fn every_scenario_serves_and_reports() {
    for run in runs() {
        let r = &run.report;
        assert!(r.served > 0, "{}: nothing served", run.name);
        assert!(r.throughput_qph.is_finite() && r.throughput_qph > 0.0);
        assert!(r.gpu_occupancy > 0.0 && r.gpu_occupancy <= 1.0);
        assert!(r.latency.is_some());
        assert!(r.makespan_s > 0.0);
        // The trace closed cleanly: one root span named "serve".
        assert!(run.obs.tracer.span_names().contains(&"serve"));
    }
    let summary = render_summary(runs());
    assert!(summary.contains("cold") && summary.contains("warm_b1"));
}
