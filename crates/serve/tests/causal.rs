//! Gates for the causal profiler (ISSUE 9):
//!
//! 1. **Passive observer** — arming provenance recording changes
//!    nothing observable about the serving results: outcomes, float
//!    bits, and rendered reports are byte-identical to a bare run, on
//!    all four canonical scenarios and the kitchen-sink chaos campaign.
//! 2. **What-if CI gates** — on the quick cold scenario: MSA is the
//!    dominant critical-path blame; a virtual GPU 2× moves the
//!    projection AND the measured re-run by under 1%; every on-path
//!    projection validates within [`WHATIF_ON_PATH_TOLERANCE_PP`]
//!    points of the ground-truth re-run, and every off-path projection
//!    predicts near-zero.
//! 3. **Residual clamp regression** — a multi-requeue chaos campaign
//!    (one worker, repeated crash kills) keeps every request's phase
//!    attribution closed to 1e-9 with a non-negative GPU residual.

use afsb_rt::fault::{FaultKind, FaultPlan};
use afsb_rt::obs::ObsSession;
use afsb_rt::sim::WaitEdge;
use afsb_serve::chaos::{chaos_scenarios, run_serve_chaos, ChaosConfig, RecoveryPolicy};
use afsb_serve::scenario::{default_scenarios, SERVE_SEED};
use afsb_serve::server::{run_serve, CostTable};
use afsb_serve::workload::WorkloadConfig;
use afsb_serve::{
    run_whatif, WHATIF_OFF_PATH_DELTA_PP, WHATIF_ON_PATH_SHARE, WHATIF_ON_PATH_TOLERANCE_PP,
};
use afsb_simarch::Platform;

fn costs() -> CostTable {
    CostTable::build(Platform::Server, true, 4, SERVE_SEED)
}

/// Provenance recording must be a passive observer: every field except
/// `causal` is byte-identical with and without it.
#[test]
fn provenance_is_observation_only_on_canonical_scenarios() {
    let costs = costs();
    for scenario in default_scenarios(true) {
        let mut bare_obs = ObsSession::new();
        let bare = run_serve(&scenario.config, &costs, &mut bare_obs);

        let mut config = scenario.config;
        config.provenance = true;
        let mut armed_obs = ObsSession::new();
        let armed = run_serve(&config, &costs, &mut armed_obs);

        assert_eq!(
            bare.outcomes, armed.outcomes,
            "{}: outcomes changed under provenance",
            scenario.name
        );
        assert_eq!(
            bare.throughput_qph.to_bits(),
            armed.throughput_qph.to_bits(),
            "{}: throughput changed under provenance",
            scenario.name
        );
        assert_eq!(
            bare.makespan_s.to_bits(),
            armed.makespan_s.to_bits(),
            "{}: makespan changed under provenance",
            scenario.name
        );
        assert_eq!(bare.latency, armed.latency, "{}: latency", scenario.name);
        assert_eq!(
            bare.deadline_missed, armed.deadline_missed,
            "{}: deadline misses",
            scenario.name
        );
        assert_eq!(bare.render(), armed.render(), "{}: render", scenario.name);
        assert!(
            bare.causal.is_none(),
            "{}: bare run has no log",
            scenario.name
        );
        let log = armed.causal.as_ref().expect("provenance log recorded");
        assert!(!log.edges.is_empty(), "{}: edges recorded", scenario.name);
        assert!(
            log.makespan_event.is_some(),
            "{}: makespan event identified",
            scenario.name
        );
    }
}

/// Same gate through the chaos scheduler: the kitchen-sink campaign's
/// dispositions and floats must not move when provenance is armed.
#[test]
fn provenance_is_observation_only_under_chaos() {
    let costs = costs();
    let scenario = chaos_scenarios(true)
        .into_iter()
        .find(|s| s.name == "kitchen-sink")
        .expect("kitchen-sink scenario exists");

    let mut bare_obs = ObsSession::new();
    let bare = run_serve_chaos(&scenario.config, &scenario.chaos, &costs, &mut bare_obs);

    let mut config = scenario.config;
    config.provenance = true;
    let mut armed_obs = ObsSession::new();
    let armed = run_serve_chaos(&config, &scenario.chaos, &costs, &mut armed_obs);

    assert_eq!(bare.base.outcomes, armed.base.outcomes, "outcomes moved");
    assert_eq!(bare.dispositions, armed.dispositions, "dispositions moved");
    assert_eq!(
        bare.availability.to_bits(),
        armed.availability.to_bits(),
        "availability moved"
    );
    assert_eq!(bare.goodput.to_bits(), armed.goodput.to_bits(), "goodput");
    assert_eq!(bare.requeues, armed.requeues);
    assert_eq!(bare.degraded_attempts, armed.degraded_attempts);
    assert_eq!(bare.base.render(), armed.base.render());
    assert!(bare.base.causal.is_none());
    assert!(armed.base.causal.is_some(), "chaos run records a log");
}

/// The ISSUE 9 CI gates over the validated what-if projections.
#[test]
fn whatif_projections_validate_within_tolerance() {
    let r = run_whatif(true);
    assert!(r.baseline_makespan_s > 0.0);

    // Gate (i): the cold scenario's binding constraint is the MSA
    // worker pool — the paper's headline result, recovered causally.
    let shares = r.path.blame_shares(0.0);
    let (_, _, msa_share) = shares
        .iter()
        .find(|(e, _, _)| *e == WaitEdge::WorkerBusy)
        .expect("worker-busy share present");
    let msa_share = *msa_share;
    for &(edge, _, share) in &shares {
        if edge != WaitEdge::WorkerBusy {
            assert!(
                msa_share > share,
                "worker-busy ({msa_share:.3}) must dominate {} ({share:.3})",
                edge.label()
            );
        }
    }
    assert!(
        msa_share > 0.5,
        "cold critical path must be MSA-dominated, got {msa_share:.3}"
    );

    // Gate (ii): a virtual GPU 2× barely moves the makespan — in the
    // projection AND the ground-truth re-run.
    let gpu = r
        .rows
        .iter()
        .find(|row| row.label == "gpu_2x")
        .expect("gpu_2x row");
    assert!(
        gpu.predicted_delta_pct(r.baseline_makespan_s).abs() < WHATIF_OFF_PATH_DELTA_PP,
        "GPU 2x predicted {:.2}% but the GPU is off the critical path",
        gpu.predicted_delta_pct(r.baseline_makespan_s)
    );
    assert!(
        gpu.actual_delta_pct(r.baseline_makespan_s).abs() < WHATIF_OFF_PATH_DELTA_PP,
        "GPU 2x measured {:.2}% but the GPU is off the critical path",
        gpu.actual_delta_pct(r.baseline_makespan_s)
    );

    // Gate (iii): on-path projections validate against the re-run
    // within the documented tolerance; off-path projections are
    // near-zero by construction.
    let mut on_path_rows = 0;
    for row in &r.rows {
        let err = row.error_pp(r.baseline_makespan_s);
        if row.on_path {
            on_path_rows += 1;
            assert!(row.target_share >= WHATIF_ON_PATH_SHARE);
            assert!(
                err <= WHATIF_ON_PATH_TOLERANCE_PP,
                "{}: projection off by {err:.2}pp (tolerance {WHATIF_ON_PATH_TOLERANCE_PP}pp)",
                row.label
            );
        } else {
            assert!(
                row.predicted_delta_pct(r.baseline_makespan_s).abs() < WHATIF_OFF_PATH_DELTA_PP,
                "{}: off-path what-if predicted {:.2}%",
                row.label,
                row.predicted_delta_pct(r.baseline_makespan_s)
            );
        }
    }
    assert!(
        on_path_rows >= 2,
        "msa_2x and workers_plus4 must both be on-path, got {on_path_rows}"
    );
}

/// ISSUE 9 satellite: the `PhaseSegments::close` residual clamp. A
/// single-worker campaign under repeated crash kills forces requests
/// through two or more requeue cycles, the float-drift path that used
/// to push the GPU residual a few ulps negative.
#[test]
fn multi_requeue_attribution_stays_closed_and_non_negative() {
    let mut config = default_scenarios(true)[0].config;
    config.cpu_workers = 1;
    config.workload = WorkloadConfig {
        num_requests: 48,
        catalog_size: 6,
        arrival_rate_per_s: 0.05,
        zipf_exponent: 1.1,
        seed: SERVE_SEED,
    };

    // Crash the lone worker over and over: every kill requeues the
    // in-flight MSA job, so popular requests see multiple attempts.
    let mut plan = FaultPlan::none();
    for i in 0..12u64 {
        plan = plan.with_at(
            FaultKind::WorkerCrash { at_fraction: 0.5 },
            600.0 + i as f64 * 900.0,
        );
    }
    let chaos = ChaosConfig {
        plan,
        policy: RecoveryPolicy::standard(),
    };

    let mut obs = ObsSession::new();
    let report = run_serve_chaos(&config, &chaos, &costs(), &mut obs);
    assert!(
        report.requeues >= 2,
        "campaign must force multiple requeues, got {}",
        report.requeues
    );

    let mut finished = 0;
    for o in &report.base.outcomes {
        if o.rejected || o.done_s <= 0.0 {
            continue;
        }
        finished += 1;
        assert!(
            o.segments.gpu_service_s >= 0.0,
            "request {}: gpu_service went negative: {}",
            o.request.id,
            o.segments.gpu_service_s
        );
        let total = o.segments.total();
        let latency = o.latency_s();
        assert!(
            (total - latency).abs() <= 1e-9,
            "request {}: segments sum {total} != latency {latency}",
            o.request.id
        );
    }
    assert!(finished > 0, "campaign must finish requests");
}
