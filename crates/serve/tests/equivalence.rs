//! The equivalence golden gate: the event-driven scheduler
//! (`serve::server`) must match the frozen seed step-scan scheduler
//! (`serve::reference`) **byte for byte** — reports, per-request
//! outcomes, metrics text and Chrome traces — on the four canonical
//! scenarios and on a sweep of synthetic edge configurations. This is
//! the proof required before the old loop was deleted, kept forever so
//! engine changes cannot silently move the serving baselines.

use afsb_core::resilience::Deadline;
use afsb_rt::obs::ObsSession;
use afsb_seq::samples::SampleId;
use afsb_serve::reference::run_serve_reference;
use afsb_serve::scenario::{default_scenarios, SERVE_SEED};
use afsb_serve::server::{run_serve, CostTable, ServeConfig, ShapeCost};
use afsb_serve::workload::WorkloadConfig;
use afsb_simarch::Platform;
use std::collections::BTreeMap;

/// Assert every observable of one (config, costs) run agrees between
/// the two schedulers, down to the bytes.
fn assert_equivalent(name: &str, config: &ServeConfig, costs: &CostTable) {
    let mut engine_obs = ObsSession::new();
    let mut seed_obs = ObsSession::new();
    let engine = run_serve(config, costs, &mut engine_obs);
    let seed = run_serve_reference(config, costs, &mut seed_obs);

    assert_eq!(engine.outcomes, seed.outcomes, "{name}: outcomes diverged");
    assert_eq!(
        engine.makespan_s.to_bits(),
        seed.makespan_s.to_bits(),
        "{name}: makespan not bit-identical"
    );
    assert_eq!(
        engine.throughput_qph.to_bits(),
        seed.throughput_qph.to_bits(),
        "{name}: throughput not bit-identical"
    );
    assert_eq!(
        engine.gpu_busy_s.to_bits(),
        seed.gpu_busy_s.to_bits(),
        "{name}: gpu busy not bit-identical"
    );
    assert_eq!(
        (engine.served, engine.rejected, engine.deadline_missed),
        (seed.served, seed.rejected, seed.deadline_missed),
        "{name}: outcome counters diverged"
    );
    assert_eq!(
        (
            engine.batches,
            engine.compiled_shapes,
            engine.cache_hits,
            engine.cache_misses,
            engine.cache_evictions
        ),
        (
            seed.batches,
            seed.compiled_shapes,
            seed.cache_hits,
            seed.cache_misses,
            seed.cache_evictions
        ),
        "{name}: resource counters diverged"
    );
    assert_eq!(
        engine.render(),
        seed.render(),
        "{name}: report text diverged"
    );
    assert_eq!(
        engine_obs.metrics.render_text(),
        seed_obs.metrics.render_text(),
        "{name}: metrics text diverged"
    );
    assert_eq!(
        engine_obs.tracer.chrome_trace_events().pretty(),
        seed_obs.tracer.chrome_trace_events().pretty(),
        "{name}: Chrome trace diverged"
    );
}

#[test]
fn canonical_scenarios_match_the_seed_scheduler_byte_for_byte() {
    let costs = CostTable::build(Platform::Server, true, 4, SERVE_SEED);
    for scenario in default_scenarios(true) {
        assert_equivalent(scenario.name, &scenario.config, &costs);
    }
}

/// Hand-priced costs (MSA in minutes, GPU in seconds — the paper's
/// §III shape) so the edge sweep below stays fast.
fn synthetic_costs(admit_all: bool) -> CostTable {
    let mut shapes = BTreeMap::new();
    for (k, &id) in SampleId::all().iter().enumerate() {
        shapes.insert(
            id,
            ShapeCost {
                msa_s: 120.0 + 30.0 * k as f64,
                feature_bytes: 10 << 20,
                feature_load_s: 0.1,
                peak_msa_bytes: 1 << 30,
                admitted: admit_all || k % 2 == 0,
                compile_s: 20.0,
                compute_s: 25.0 + k as f64,
            },
        );
    }
    CostTable {
        platform: Platform::Server,
        msa_threads: 4,
        init_s: 30.0,
        dispatch_s: 1.5,
        shapes,
    }
}

#[test]
fn edge_configurations_match_the_seed_scheduler() {
    let base = ServeConfig {
        workload: WorkloadConfig {
            num_requests: 96,
            catalog_size: 8,
            arrival_rate_per_s: 0.2,
            zipf_exponent: 1.1,
            seed: 23,
        },
        ..ServeConfig::default()
    };
    let cases: Vec<(&str, ServeConfig)> = vec![
        ("base", base),
        (
            "nocache",
            ServeConfig {
                cache_capacity_bytes: 0,
                ..base
            },
        ),
        (
            "prewarmed_b1",
            ServeConfig {
                prewarm_cache: true,
                gpu_batch: 1,
                ..base
            },
        ),
        (
            "one_worker",
            ServeConfig {
                cpu_workers: 1,
                ..base
            },
        ),
        (
            "tight_deadline",
            ServeConfig {
                deadline: Deadline::new(Some(1.0)),
                ..base
            },
        ),
        (
            "no_deadline",
            ServeConfig {
                deadline: Deadline::new(None),
                ..base
            },
        ),
    ];
    for (name, config) in &cases {
        assert_equivalent(name, config, &synthetic_costs(true));
    }
    // Admission rejections interleaved with served requests.
    assert_equivalent("half_admitted", &base, &synthetic_costs(false));
}
