//! Gates for the serving-telemetry layer (ISSUE 8):
//!
//! 1. **Observation-only** — arming the timeline sampler and SLO
//!    monitor changes nothing observable about the serving results:
//!    outcomes (including phase segments), rendered reports and
//!    latency floats are byte-identical to a telemetry-off run, on all
//!    four canonical scenarios and one chaos campaign.
//! 2. **Attribution closure** — per-request phase segments sum to
//!    `latency_s()` within 1e-9 on every finished request, across
//!    seeded workloads *and* chaos runs with requeues.
//! 3. **Byte-identity** — two runs of the sampler render identical
//!    bytes; the cold timeline shows the GPU-idle gap; the brownout
//!    campaign fires `slo:burn` then `slo:clear`.

use afsb_rt::check::{self, Config, Gen};
use afsb_rt::obs::ObsSession;
use afsb_serve::chaos::{chaos_scenarios, run_serve_chaos};
use afsb_serve::scenario::{default_scenarios, SERVE_SEED};
use afsb_serve::server::{run_serve, CostTable, TelemetryConfig, TIMELINE_COLUMNS};
use afsb_serve::workload::WorkloadConfig;
use afsb_serve::{run_brownout_telemetry, run_telemetry};
use afsb_simarch::Platform;

fn costs() -> CostTable {
    CostTable::build(Platform::Server, true, 4, SERVE_SEED)
}

/// Telemetry must not perturb the serving results: every field except
/// `timeline`/`slo` is byte-identical with and without it.
#[test]
fn telemetry_is_observation_only_on_canonical_scenarios() {
    let costs = costs();
    for scenario in default_scenarios(true) {
        let mut bare_obs = ObsSession::new();
        let bare = run_serve(&scenario.config, &costs, &mut bare_obs);

        let mut config = scenario.config;
        config.telemetry = TelemetryConfig::standard(true);
        let mut tel_obs = ObsSession::new();
        let tel = run_serve(&config, &costs, &mut tel_obs);

        assert_eq!(
            bare.outcomes, tel.outcomes,
            "{}: outcomes changed under telemetry",
            scenario.name
        );
        assert_eq!(
            bare.throughput_qph.to_bits(),
            tel.throughput_qph.to_bits(),
            "{}: throughput changed under telemetry",
            scenario.name
        );
        assert_eq!(
            bare.makespan_s.to_bits(),
            tel.makespan_s.to_bits(),
            "{}: makespan changed under telemetry",
            scenario.name
        );
        assert_eq!(bare.latency, tel.latency, "{}: latency", scenario.name);
        assert_eq!(
            bare.deadline_missed, tel.deadline_missed,
            "{}: deadline misses",
            scenario.name
        );
        // The rendered report ignores telemetry fields entirely.
        assert_eq!(bare.render(), tel.render(), "{}: render", scenario.name);
        assert!(bare.timeline.is_none() && bare.slo.is_none());
        assert!(tel.timeline.is_some() && tel.slo.is_some());
    }
}

/// Same gate for the chaos scheduler: a faulted campaign's dispositions
/// and floats must not move when telemetry is armed.
#[test]
fn telemetry_is_observation_only_under_chaos() {
    let costs = costs();
    let scenario = chaos_scenarios(true)
        .into_iter()
        .find(|s| s.name == "kitchen-sink")
        .expect("kitchen-sink scenario exists");

    let mut bare_obs = ObsSession::new();
    let bare = run_serve_chaos(&scenario.config, &scenario.chaos, &costs, &mut bare_obs);

    let mut config = scenario.config;
    config.telemetry = TelemetryConfig::standard(true);
    let mut tel_obs = ObsSession::new();
    let tel = run_serve_chaos(&config, &scenario.chaos, &costs, &mut tel_obs);

    assert_eq!(bare.base.outcomes, tel.base.outcomes, "outcomes moved");
    assert_eq!(bare.dispositions, tel.dispositions, "dispositions moved");
    assert_eq!(
        bare.availability.to_bits(),
        tel.availability.to_bits(),
        "availability moved"
    );
    assert_eq!(bare.goodput.to_bits(), tel.goodput.to_bits(), "goodput");
    assert_eq!(bare.requeues, tel.requeues);
    assert_eq!(bare.degraded_attempts, tel.degraded_attempts);
    assert_eq!(bare.base.render(), tel.base.render());
}

fn assert_segments_close(report: &afsb_serve::ServeReport, label: &str) {
    let mut finished = 0;
    for o in &report.outcomes {
        if o.rejected || o.done_s <= 0.0 {
            continue;
        }
        finished += 1;
        let total = o.segments.total();
        let latency = o.latency_s();
        assert!(
            (total - latency).abs() <= 1e-9,
            "{label}: request {} segments sum {total} != latency {latency}",
            o.request.id
        );
        for (i, name) in afsb_serve::PhaseSegments::NAMES.iter().enumerate() {
            assert!(
                o.segments.get(i).is_finite(),
                "{label}: request {} phase {name} not finite",
                o.request.id
            );
        }
    }
    assert!(finished > 0, "{label}: no finished requests to check");
}

/// Property: phase segments sum to `latency_s()` within 1e-9 across
/// seeded workloads, canonical and randomized.
#[test]
fn segments_sum_to_latency_on_seeded_workloads() {
    let costs = costs();
    for scenario in default_scenarios(true) {
        let mut obs = ObsSession::new();
        let report = run_serve(&scenario.config, &costs, &mut obs);
        assert_segments_close(&report, scenario.name);
    }

    // Randomized streams over the cold config: vary load, catalog and
    // batch to hit different queueing/batching interleavings.
    let base = default_scenarios(true)[0].config;
    check::run(
        "serve segments sum to latency",
        Config::cases(12),
        |g: &mut Gen| {
            let mut config = base;
            config.workload = WorkloadConfig {
                num_requests: g.range(40usize..160),
                catalog_size: g.range(3usize..24),
                arrival_rate_per_s: 0.02 + g.range(1u64..50) as f64 * 0.01,
                zipf_exponent: 0.8 + g.range(0u64..8) as f64 * 0.1,
                seed: g.range(1u64..(1 << 20)),
            };
            config.gpu_batch = g.range(1usize..8);
            config.prewarm_cache = g.bool();
            config.coalesce_misses = g.bool();
            let mut obs = ObsSession::new();
            let report = run_serve(&config, &costs, &mut obs);
            assert_segments_close(&report, "randomized");
        },
    );
}

/// The same closure property must hold through the chaos scheduler —
/// including campaigns whose kills force requeues, so a request's
/// segments span multiple MSA attempts.
#[test]
fn segments_sum_to_latency_under_chaos_requeues() {
    let costs = costs();
    let mut saw_requeues = false;
    for scenario in chaos_scenarios(true) {
        let mut obs = ObsSession::new();
        let report = run_serve_chaos(&scenario.config, &scenario.chaos, &costs, &mut obs);
        saw_requeues |= report.requeues > 0;
        assert_segments_close(&report.base, scenario.name);
    }
    assert!(
        saw_requeues,
        "chaos matrix must exercise the requeue attribution path"
    );
}

/// Two telemetry runs render byte-identical timelines and dashboards.
#[test]
fn timeline_output_is_byte_identical_across_runs() {
    let a = run_telemetry(true);
    let b = run_telemetry(true);
    for (ra, rb) in a.scenarios.iter().zip(&b.scenarios) {
        let ta = ra.report.timeline.as_ref().expect("timeline");
        let tb = rb.report.timeline.as_ref().expect("timeline");
        assert_eq!(ta.render(), tb.render(), "{}: timeline bytes", ra.name);
        assert_eq!(
            ta.render_sparklines(),
            tb.render_sparklines(),
            "{}: sparkline bytes",
            ra.name
        );
    }
    assert_eq!(
        afsb_serve::render_telemetry(&a),
        afsb_serve::render_telemetry(&b),
        "full dashboard bytes"
    );
}

/// The paper's headline serving pathology must be visible in the cold
/// timeline: early rows where the MSA queue is deep while the GPU sits
/// idle (the CPU phase starves the accelerator).
#[test]
fn cold_timeline_shows_the_gpu_idle_gap() {
    let report = run_telemetry(true);
    let cold = &report.scenarios[0];
    assert_eq!(cold.name, "cold");
    let tl = cold.report.timeline.as_ref().expect("timeline");
    assert_eq!(tl.columns(), TIMELINE_COLUMNS);
    let gap_rows = (0..tl.rows().len())
        .filter(|&i| tl.value(i, "gpu") == 0.0 && tl.value(i, "msa_q") > 0.0)
        .count();
    assert!(
        gap_rows > 0,
        "cold scenario must show GPU idle while the MSA queue is deep"
    );
}

/// The storage brownout must drive the SLO alert through a full
/// burn → clear cycle, visible both in the outcome transitions and as
/// trace instants in order.
#[test]
fn brownout_fires_and_clears_the_slo_alert() {
    let run = run_brownout_telemetry(true);
    let slo = run.report.base.slo.as_ref().expect("slo evaluated");
    assert!(
        slo.burn_events >= 1,
        "brownout must fire the SLO alert at least once"
    );
    assert_eq!(
        slo.burn_events, slo.clear_events,
        "every burn must clear by end of run"
    );
    let first = slo.transitions.first().expect("transitions recorded");
    let last = slo.transitions.last().expect("transitions recorded");
    assert!(
        first.firing && !last.firing,
        "burn precedes the final clear"
    );
    assert!(slo.alert_seconds > 0.0);

    let names = run.obs.tracer.instant_names();
    let instants: Vec<&str> = names
        .into_iter()
        .filter(|n| n.starts_with("slo:"))
        .collect();
    let first_burn = instants.iter().position(|n| *n == "slo:burn");
    let first_clear = instants.iter().position(|n| *n == "slo:clear");
    match (first_burn, first_clear) {
        (Some(b), Some(c)) => assert!(b < c, "slo:burn must precede slo:clear"),
        _ => panic!("missing slo:burn/slo:clear instants: {instants:?}"),
    }
}

/// The PR 7 caveat: the kitchen-sink campaign applies degradation rungs
/// whose requests are later shed, so the old `degr` disposition count
/// hid them. `degraded_attempts` must be nonzero there.
#[test]
fn kitchen_sink_counts_degraded_attempts() {
    let costs = costs();
    let scenario = chaos_scenarios(true)
        .into_iter()
        .find(|s| s.name == "kitchen-sink")
        .expect("kitchen-sink scenario exists");
    let mut obs = ObsSession::new();
    let report = run_serve_chaos(&scenario.config, &scenario.chaos, &costs, &mut obs);
    let degrade_instants = obs
        .tracer
        .instant_names()
        .iter()
        .filter(|n| n.starts_with("degrade:"))
        .count() as u64;
    assert_eq!(
        report.degraded_attempts, degrade_instants,
        "degraded_attempts must count degrade: instants exactly"
    );
    assert!(
        report.degraded_attempts > 0,
        "kitchen-sink must apply at least one degradation rung"
    );
    assert!(
        report.degraded_attempts >= report.degraded as u64,
        "attempts include requests later shed or failed"
    );
}
