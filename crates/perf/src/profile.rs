//! Profiling experiment drivers: run a workload under the tracer, build
//! every report engine, and fold the result into a [`PerfBaseline`]
//! ready to serialize as `BENCH_<experiment>.json`.
//!
//! Three experiments are profiled:
//!
//! * `pipeline` — the end-to-end S2pv7 run on the Server (the paper's
//!   headline workload), yielding Tables III–V, the sampled profile,
//!   and the iostat timeline.
//! * `msa-sweep` — the S6qnr MSA thread sweep (Fig. 5), yielding per
//!   thread-count wall/CPU/I/O metrics plus the 4-thread symbol table.
//! * `serve` — the canonical multi-query serving scenarios (feature
//!   cache and GPU batching ablations), yielding per-scenario
//!   throughput, latency percentiles, hit rate and occupancy.
//! * `serve-xl` — the same ablations at production scale (10k requests
//!   quick, 100k full; 500–2000 entity catalog, 64 workers, batch 8,
//!   miss coalescing on) — the event engine's scale exercise.
//! * `serve-chaos` — the canonical fault-injection matrix (fault-free
//!   baseline, worker-churn, storage-brownout, gpu-flap, kitchen-sink)
//!   with the recovery policy on, yielding per-scenario availability,
//!   goodput, disposition counts and fault/lost-time accounting.
//! * `serve-whatif` — the causal profiler: critical-path blame shares
//!   over the provenance-armed `cold` scenario, per-request binding
//!   classification, and every canonical virtual speedup projected
//!   from the recorded DAG then validated by a ground-truth re-run.
//!
//! All are fully deterministic: the same seed and mode produce a
//! byte-identical baseline file.

use crate::baseline::{PerfBaseline, SampledSummary, SymbolTable};
use crate::iostat::IostatTimeline;
use crate::record::{SampledProfile, DEFAULT_SAMPLES};
use crate::stat::{cpu_derived, symbol_rows, CpuDerived, PerfStatReport};
use afsb_core::context::{BenchContext, ContextConfig};
use afsb_core::msa_phase::MsaPhaseOptions;
use afsb_core::pipeline::PipelineOptions;
use afsb_core::runner::{msa_thread_sweep, MSA_THREAD_SWEEP};
use afsb_core::trace::{record_msa_phase, run_pipeline_traced};
use afsb_model::ModelConfig;
use afsb_rt::obs::ObsSession;
use afsb_seq::samples::SampleId;
use afsb_simarch::Platform;
use std::fmt::Write as _;

/// Experiments `afsysbench profile` understands.
pub const PROFILE_EXPERIMENTS: [&str; 6] = [
    "pipeline",
    "msa-sweep",
    "serve",
    "serve-xl",
    "serve-chaos",
    "serve-whatif",
];

/// Seed shared by the profiled runs (matches the bench harness).
pub const PROFILE_SEED: u64 = 17;

/// How many leaf symbols the baseline's sampled top-N keeps.
pub const SAMPLED_TOP_N: usize = 10;

/// Everything one `profile` invocation produces.
#[derive(Debug, Clone)]
pub struct ProfileArtifacts {
    /// The diffable baseline (serialize with `to_json().pretty()`).
    pub baseline: PerfBaseline,
    /// Human-readable session report (stat + sampled + iostat).
    pub report_text: String,
    /// Collapsed stacks — flamegraph input.
    pub collapsed: String,
    /// Serving gauge timeline + SLO log (`--timeline` artifact);
    /// `Some` for the telemetry-armed serving experiments.
    pub timeline: Option<String>,
    /// Serving latency histogram bucket dump (CSV, `--timeline`
    /// artifact); `Some` whenever a serving run was profiled.
    pub latency_csv: Option<String>,
    /// Whole-run critical path per scenario (`--critical-path`
    /// artifact): ASCII blame report plus the collapsed-stack export;
    /// `Some` when the profiled run recorded provenance.
    pub critpath: Option<String>,
}

/// The canonical baseline file name for an experiment
/// (`BENCH_pipeline.json`, `BENCH_msa_sweep.json`).
pub fn baseline_file_name(experiment: &str) -> String {
    format!("BENCH_{}.json", experiment.replace('-', "_"))
}

/// Run the named profiling experiment. `Err` lists the known
/// experiments when the name is unknown.
pub fn run_profile(experiment: &str, quick: bool) -> Result<ProfileArtifacts, String> {
    match experiment {
        "pipeline" => Ok(profile_pipeline(quick)),
        "msa-sweep" => Ok(profile_msa_sweep(quick)),
        "serve" => Ok(profile_serve(quick)),
        "serve-xl" => Ok(profile_serve_xl(quick)),
        "serve-chaos" => Ok(profile_serve_chaos(quick)),
        "serve-whatif" => Ok(profile_serve_whatif(quick)),
        other => Err(format!(
            "unknown profile experiment `{other}` (available: {})",
            PROFILE_EXPERIMENTS.join(", ")
        )),
    }
}

fn scale(quick: bool) -> (ContextConfig, u64) {
    if quick {
        (ContextConfig::test(), 400_000)
    } else {
        (ContextConfig::bench(), 6_000_000)
    }
}

fn push_derived(metrics: &mut Vec<(String, f64)>, prefix: &str, d: &CpuDerived) {
    metrics.push((format!("{prefix}.ipc"), d.ipc));
    metrics.push((
        format!("{prefix}.cache_miss_per_kinst"),
        d.cache_miss_per_kinst,
    ));
    metrics.push((format!("{prefix}.l1_miss_pct"), d.l1_miss_pct));
    metrics.push((format!("{prefix}.llc_miss_pct"), d.llc_miss_pct));
    metrics.push((format!("{prefix}.dtlb_miss_pct"), d.dtlb_miss_pct));
    metrics.push((format!("{prefix}.branch_miss_pct"), d.branch_miss_pct));
    metrics.push((format!("{prefix}.dram_bw_util_pct"), d.dram_bw_util_pct));
}

/// Profile the end-to-end pipeline (S2pv7, Server, 4 threads).
pub fn profile_pipeline(quick: bool) -> ProfileArtifacts {
    let (config, sample_cap) = scale(quick);
    let mut ctx = BenchContext::new(config);
    let data = ctx.sample_data(SampleId::S2pv7);
    let options = PipelineOptions {
        msa: MsaPhaseOptions {
            sample_cap,
            ..MsaPhaseOptions::default()
        },
        model: Some(ModelConfig::paper()),
        seed: PROFILE_SEED,
    };
    let mut obs = ObsSession::new();
    let result = run_pipeline_traced(&data, Platform::Server, 4, &options, &mut obs);

    let stat = PerfStatReport::from_pipeline(&data, &result);
    let sampled = SampledProfile::capture_n(&obs.tracer, DEFAULT_SAMPLES);
    let iostat = IostatTimeline::sample_msa(&result.msa, result.msa.wall_seconds().max(1.0) / 50.0);

    let mut metrics = Vec::new();
    metrics.push(("wall.msa_s".to_owned(), stat.msa_wall_s));
    metrics.push(("wall.inference_s".to_owned(), stat.inference_wall_s));
    metrics.push(("wall.total_s".to_owned(), stat.total_s));
    push_derived(&mut metrics, "derived", &stat.msa_derived);
    push_derived(&mut metrics, "host", &stat.host_derived);
    let g = &stat.gpu;
    metrics.push(("gpu.roofline_attainment".to_owned(), g.roofline.attainment));
    metrics.push(("gpu.sm_occupancy".to_owned(), g.roofline.sm_occupancy));
    metrics.push((
        "gpu.memory_bound_frac".to_owned(),
        g.roofline.memory_bound_fraction,
    ));
    metrics.push(("gpu.launch_share".to_owned(), g.roofline.launch_share));
    metrics.push(("gpu.overhead_share".to_owned(), g.overhead_share));
    metrics.push(("gpu.uvm_fraction".to_owned(), g.uvm_fraction));
    metrics.push(("iostat.mean_util_pct".to_owned(), iostat.mean_util_pct()));
    metrics.push(("iostat.stall_s".to_owned(), iostat.stall_seconds()));

    let baseline = PerfBaseline {
        experiment: "pipeline".to_owned(),
        seed: PROFILE_SEED,
        quick,
        metrics,
        symbol_tables: vec![
            SymbolTable {
                name: "msa".to_owned(),
                rows: stat.msa_symbols.clone(),
            },
            SymbolTable {
                name: "host".to_owned(),
                rows: stat.host_symbols.clone(),
            },
        ],
        sampled: SampledSummary::from_profile(&sampled, SAMPLED_TOP_N),
    };

    let mut report_text = stat.render();
    report_text.push('\n');
    report_text.push_str(&sampled.render_top(SAMPLED_TOP_N));
    report_text.push('\n');
    report_text.push_str(&iostat.render());

    ProfileArtifacts {
        baseline,
        report_text,
        collapsed: sampled.collapsed(),
        timeline: None,
        latency_csv: None,
        critpath: None,
    }
}

/// Profile the MSA thread sweep (S6qnr, Server, Fig. 5 thread counts).
pub fn profile_msa_sweep(quick: bool) -> ProfileArtifacts {
    let (config, sample_cap) = scale(quick);
    let mut ctx = BenchContext::new(config);
    let data = ctx.sample_data(SampleId::S6qnr);
    let options = MsaPhaseOptions {
        sample_cap,
        ..MsaPhaseOptions::default()
    };
    let sweep = msa_thread_sweep(&data, Platform::Server, &MSA_THREAD_SWEEP, &options);

    // Lay every sweep point into one trace so the sampled profile covers
    // the whole experiment.
    let mut obs = ObsSession::new();
    obs.tracer.begin("msa_sweep");
    for (_, r) in &sweep {
        record_msa_phase(&data, r, &mut obs);
    }
    obs.tracer.end();
    let sampled = SampledProfile::capture_n(&obs.tracer, DEFAULT_SAMPLES);

    let mut metrics = Vec::new();
    let mut report_text = String::new();
    let _ = writeln!(
        report_text,
        "msa thread sweep: {} on {} (sample_cap {})",
        data.sample.id.name(),
        Platform::Server,
        sample_cap
    );
    let _ = writeln!(
        report_text,
        "{:>8} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "threads", "wall_s", "cpu_s", "io_s", "ipc", "%util"
    );
    for (t, r) in &sweep {
        let d = cpu_derived(&r.sim, Platform::Server);
        metrics.push((format!("sweep.t{t}.wall_s"), r.wall_seconds()));
        metrics.push((format!("sweep.t{t}.cpu_s"), r.cpu_seconds));
        metrics.push((format!("sweep.t{t}.io_added_s"), r.io_added_seconds));
        metrics.push((format!("sweep.t{t}.ipc"), d.ipc));
        metrics.push((format!("sweep.t{t}.nvme_util_pct"), r.iostat.util_pct));
        let _ = writeln!(
            report_text,
            "{:>8} {:>10.2} {:>10.2} {:>10.2} {:>8.2} {:>8.1}",
            t,
            r.wall_seconds(),
            r.cpu_seconds,
            r.io_added_seconds,
            d.ipc,
            r.iostat.util_pct
        );
    }

    // Symbol attribution at the paper's default 4-thread point.
    let four = sweep
        .iter()
        .find(|(t, _)| *t == 4)
        .map(|(_, r)| r)
        .unwrap_or(&sweep[0].1);
    let symbol_tables = vec![SymbolTable {
        name: "msa".to_owned(),
        rows: symbol_rows(&four.sim.report),
    }];

    report_text.push('\n');
    report_text.push_str(&sampled.render_top(SAMPLED_TOP_N));

    ProfileArtifacts {
        baseline: PerfBaseline {
            experiment: "msa-sweep".to_owned(),
            seed: options.seed,
            quick,
            metrics,
            symbol_tables,
            sampled: SampledSummary::from_profile(&sampled, SAMPLED_TOP_N),
        },
        report_text,
        collapsed: sampled.collapsed(),
        timeline: None,
        latency_csv: None,
        critpath: None,
    }
}

/// Profile the canonical serving scenarios (Server, quick or full
/// stream) with telemetry armed — telemetry is observation-only, so
/// every pre-existing metric matches a bare `run_default` bit for bit,
/// while `attr.*`/`slo.*` metrics and the `--timeline` artifact are
/// added. Metrics are prefixed per scenario (`cold.qph`, …); the
/// sampled profile covers the cold scenario's trace.
pub fn profile_serve(quick: bool) -> ProfileArtifacts {
    serve_artifacts(
        "serve",
        afsb_serve::scenario::run_default_telemetry(quick),
        quick,
    )
}

/// Profile the XL serving scenarios — the same four ablations over a
/// 10k-request (quick) / 100k-request (full) Poisson/Zipf stream with
/// miss coalescing on. Adds the coalescing counter per scenario.
pub fn profile_serve_xl(quick: bool) -> ProfileArtifacts {
    serve_artifacts("serve-xl", afsb_serve::scenario::run_xl(quick), quick)
}

/// Profile the serve-chaos matrix — the canonical fault-injection
/// scenarios with the recovery policy on. Metrics are prefixed per
/// scenario (`kitchen-sink.goodput`, …); the sampled profile covers
/// the kitchen-sink trace, the fault-richest scenario.
pub fn profile_serve_chaos(quick: bool) -> ProfileArtifacts {
    let runs = afsb_serve::chaos::run_chaos_telemetry(quick);
    let mut metrics = Vec::new();
    for run in &runs {
        let r = &run.report;
        let p = run.name;
        metrics.push((format!("{p}.availability"), r.availability));
        metrics.push((format!("{p}.goodput"), r.goodput));
        metrics.push((format!("{p}.completed"), r.completed as f64));
        metrics.push((format!("{p}.degraded"), r.degraded as f64));
        metrics.push((format!("{p}.degraded_attempts"), r.degraded_attempts as f64));
        metrics.push((format!("{p}.shed"), r.shed as f64));
        metrics.push((format!("{p}.failed"), r.failed as f64));
        metrics.push((format!("{p}.requeues"), r.requeues as f64));
        metrics.push((format!("{p}.faults"), r.fault_events.len() as f64));
        metrics.push((format!("{p}.lost_s"), r.lost_seconds));
        metrics.push((format!("{p}.qph"), r.base.throughput_qph));
        metrics.push((format!("wall.{p}_makespan_s"), r.base.makespan_s));
        push_telemetry_metrics(&mut metrics, p, &r.base);
    }

    let sink = runs.last().expect("chaos matrix is non-empty");
    let sampled = SampledProfile::capture_n(&sink.obs.tracer, DEFAULT_SAMPLES);

    let mut report_text = afsb_serve::chaos::render_chaos_summary(&runs);
    report_text.push('\n');
    report_text.push_str(&sampled.render_top(SAMPLED_TOP_N));

    let timeline: String = runs
        .iter()
        .map(|run| afsb_serve::render_timeline_block(run.name, &run.report.base))
        .collect();
    let latency_csv = sink
        .obs
        .metrics
        .histogram("serve.latency_s")
        .map(|h| h.to_csv());

    let critpath: String = runs
        .iter()
        .filter_map(|run| critpath_block(run.name, &run.report.base))
        .collect();

    ProfileArtifacts {
        baseline: PerfBaseline {
            experiment: "serve-chaos".to_owned(),
            seed: afsb_serve::scenario::SERVE_SEED,
            quick,
            metrics,
            symbol_tables: Vec::new(),
            sampled: SampledSummary::from_profile(&sampled, SAMPLED_TOP_N),
        },
        report_text,
        collapsed: sampled.collapsed(),
        timeline: (!timeline.is_empty()).then_some(timeline),
        latency_csv,
        critpath: (!critpath.is_empty()).then_some(critpath),
    }
}

/// Profile the causal what-if experiment: critical-path extraction
/// over the provenance-armed `cold` scenario plus every canonical
/// virtual speedup projected from the recorded DAG and validated by a
/// ground-truth re-run. The `whatif.*` metrics carry both sides of
/// each projection, so the committed baseline gates the projector's
/// accuracy itself.
pub fn profile_serve_whatif(quick: bool) -> ProfileArtifacts {
    let r = afsb_serve::run_whatif(quick);
    let mut metrics = Vec::new();
    metrics.push(("wall.cold_makespan_s".to_owned(), r.baseline_makespan_s));
    metrics.push(("cold.qph".to_owned(), r.baseline_qph));
    for (edge, _, share) in r.path.blame_shares(0.0) {
        metrics.push((format!("critpath.{}.share", edge.label()), share));
    }
    for &edge in &afsb_rt::sim::WaitEdge::ALL {
        metrics.push((
            format!("binding.{}", edge.label()),
            r.bindings[edge.index()] as f64,
        ));
    }
    metrics.push((
        "binding.off_path_batch_waiters".to_owned(),
        r.off_path_batch_waiters as f64,
    ));
    for row in &r.rows {
        let p = &row.label;
        metrics.push((format!("whatif.{p}.target_share"), row.target_share));
        metrics.push((
            format!("whatif.{p}.predicted_delta_pct"),
            row.predicted_delta_pct(r.baseline_makespan_s),
        ));
        metrics.push((
            format!("whatif.{p}.actual_delta_pct"),
            row.actual_delta_pct(r.baseline_makespan_s),
        ));
        metrics.push((
            format!("whatif.{p}.error_pp"),
            row.error_pp(r.baseline_makespan_s),
        ));
    }

    let sampled = SampledProfile::capture_n(&r.obs.tracer, DEFAULT_SAMPLES);
    let mut report_text = afsb_serve::render_whatif(&r);
    report_text.push('\n');
    report_text.push_str(&sampled.render_top(SAMPLED_TOP_N));

    let mut critpath = r.path.render("cold");
    critpath.push('\n');
    critpath.push_str(&r.path.collapsed("critpath;cold"));

    ProfileArtifacts {
        baseline: PerfBaseline {
            experiment: "serve-whatif".to_owned(),
            seed: afsb_serve::scenario::SERVE_SEED,
            quick,
            metrics,
            symbol_tables: Vec::new(),
            sampled: SampledSummary::from_profile(&sampled, SAMPLED_TOP_N),
        },
        report_text,
        collapsed: sampled.collapsed(),
        timeline: None,
        latency_csv: None,
        critpath: Some(critpath),
    }
}

/// One scenario's whole-run critical path as a `--critical-path`
/// artifact block: the ASCII blame report plus the collapsed-stack
/// export (same format as the flamegraph inputs). `None` when the run
/// recorded no provenance or served nothing.
fn critpath_block(name: &str, report: &afsb_serve::ServeReport) -> Option<String> {
    let log = report.causal.as_ref()?;
    let path = afsb_rt::obs::causal::critical_path(&log.edges, log.makespan_event?);
    let mut out = path.render(name);
    out.push('\n');
    out.push_str(&path.collapsed(&format!("critpath;{name}")));
    out.push('\n');
    Some(out)
}

fn serve_artifacts(
    experiment: &str,
    runs: Vec<afsb_serve::ScenarioRun>,
    quick: bool,
) -> ProfileArtifacts {
    let mut metrics = Vec::new();
    for run in &runs {
        let r = &run.report;
        let p = run.name;
        metrics.push((format!("{p}.qph"), r.throughput_qph));
        metrics.push((format!("wall.{p}_makespan_s"), r.makespan_s));
        metrics.push((format!("{p}.cache_hit_rate"), r.cache_hit_rate));
        metrics.push((format!("{p}.gpu_occupancy"), r.gpu_occupancy));
        metrics.push((format!("{p}.gpu_batches"), r.batches as f64));
        metrics.push((format!("{p}.deadline_missed"), r.deadline_missed as f64));
        if run.report.cache_coalesced > 0 {
            metrics.push((format!("{p}.cache_coalesced"), r.cache_coalesced as f64));
        }
        if let Some(l) = &r.latency {
            metrics.push((format!("{p}.latency_p50_s"), l.p50));
            metrics.push((format!("{p}.latency_p90_s"), l.p90));
            metrics.push((format!("{p}.latency_p99_s"), l.p99));
        }
        push_telemetry_metrics(&mut metrics, p, r);
    }

    let cold = runs.first().expect("scenario set is non-empty");
    let sampled = SampledProfile::capture_n(&cold.obs.tracer, DEFAULT_SAMPLES);

    let mut report_text = afsb_serve::scenario::render_summary(&runs);
    report_text.push('\n');
    report_text.push_str(&sampled.render_top(SAMPLED_TOP_N));

    let timeline: String = runs
        .iter()
        .map(|run| afsb_serve::render_timeline_block(run.name, &run.report))
        .collect();
    let latency_csv = cold
        .obs
        .metrics
        .histogram("serve.latency_s")
        .map(|h| h.to_csv());
    let critpath: String = runs
        .iter()
        .filter_map(|run| critpath_block(run.name, &run.report))
        .collect();

    ProfileArtifacts {
        baseline: PerfBaseline {
            experiment: experiment.to_owned(),
            seed: afsb_serve::scenario::SERVE_SEED,
            quick,
            metrics,
            symbol_tables: Vec::new(),
            sampled: SampledSummary::from_profile(&sampled, SAMPLED_TOP_N),
        },
        report_text,
        collapsed: sampled.collapsed(),
        timeline: (!timeline.is_empty()).then_some(timeline),
        latency_csv,
        critpath: (!critpath.is_empty()).then_some(critpath),
    }
}

/// Append the telemetry-derived metrics for one serving report:
/// `attr.<phase>` latency-attribution shares (always available — phase
/// segments are tracked unconditionally) and, when the SLO monitor was
/// armed, the `slo.*` burn/alert summary.
fn push_telemetry_metrics(metrics: &mut Vec<(String, f64)>, p: &str, r: &afsb_serve::ServeReport) {
    if let Some(shares) = r.attribution_shares() {
        for (phase, share) in shares {
            metrics.push((format!("{p}.attr.{phase}"), share));
        }
    }
    if let Some(slo) = &r.slo {
        metrics.push((format!("{p}.slo.burn_events"), slo.burn_events as f64));
        metrics.push((format!("{p}.slo.clear_events"), slo.clear_events as f64));
        metrics.push((format!("{p}.slo.max_burn"), slo.max_burn));
        metrics.push((format!("{p}.slo.alert_s"), slo.alert_seconds));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afsb_rt::ToJson;

    #[test]
    fn unknown_experiment_lists_available() {
        let err = run_profile("nope", true).unwrap_err();
        assert!(
            err.contains("pipeline") && err.contains("msa-sweep"),
            "{err}"
        );
    }

    #[test]
    fn baseline_file_names_are_underscored() {
        assert_eq!(baseline_file_name("pipeline"), "BENCH_pipeline.json");
        assert_eq!(baseline_file_name("msa-sweep"), "BENCH_msa_sweep.json");
        assert_eq!(baseline_file_name("serve"), "BENCH_serve.json");
        assert_eq!(baseline_file_name("serve-xl"), "BENCH_serve_xl.json");
        assert_eq!(baseline_file_name("serve-chaos"), "BENCH_serve_chaos.json");
        assert_eq!(
            baseline_file_name("serve-whatif"),
            "BENCH_serve_whatif.json"
        );
    }

    #[test]
    fn quick_serve_whatif_profile_carries_projection_and_critpath() {
        let a = profile_serve_whatif(true);
        assert_eq!(a.baseline.experiment, "serve-whatif");
        assert!(a.baseline.metric("wall.cold_makespan_s").unwrap() > 0.0);
        // The paper's starvation finding, causally: on cold the MSA
        // pool carries the dominant critical-path share.
        let msa_share = a.baseline.metric("critpath.worker-busy.share").unwrap();
        assert!(msa_share > 0.5, "msa share {msa_share}");
        for what in ["msa_2x", "gpu_2x", "xla_2x", "workers_plus4", "cache_inf"] {
            for m in ["predicted_delta_pct", "actual_delta_pct", "error_pp"] {
                assert!(
                    a.baseline.metric(&format!("whatif.{what}.{m}")).is_some(),
                    "whatif.{what}.{m} missing"
                );
            }
        }
        let critpath = a.critpath.as_deref().expect("critpath artifact present");
        assert!(critpath.contains("critical path: cold"));
        assert!(critpath.contains("critpath;cold;worker-busy;msa-done"));
        assert!(a.report_text.contains("what-if projection"));
        assert!(a.baseline.sampled.total_samples > 0);
    }

    #[test]
    fn serve_profiles_carry_per_scenario_critpath_blocks() {
        let a = profile_serve(true);
        let critpath = a.critpath.as_deref().expect("serve critpath present");
        for scenario in ["cold", "nocache", "warm", "warm_b1"] {
            assert!(
                critpath.contains(&format!("critical path: {scenario}")),
                "{scenario} block missing"
            );
        }
        let c = profile_serve_chaos(true);
        let chaos_critpath = c.critpath.as_deref().expect("chaos critpath present");
        for scenario in ["baseline", "kitchen-sink"] {
            assert!(
                chaos_critpath.contains(&format!("critical path: {scenario}")),
                "{scenario} block missing"
            );
        }
    }

    #[test]
    fn quick_serve_chaos_profile_covers_every_scenario() {
        let a = profile_serve_chaos(true);
        for scenario in [
            "baseline",
            "worker-churn",
            "storage-brownout",
            "gpu-flap",
            "kitchen-sink",
        ] {
            for metric in ["availability", "goodput", "completed"] {
                assert!(
                    a.baseline.metric(&format!("{scenario}.{metric}")).is_some(),
                    "{scenario}.{metric} missing"
                );
            }
            assert!(a
                .baseline
                .metric(&format!("wall.{scenario}_makespan_s"))
                .is_some());
        }
        assert_eq!(a.baseline.metric("baseline.faults"), Some(0.0));
        assert!(a.baseline.metric("kitchen-sink.faults").unwrap() > 0.0);
        assert!(a.baseline.sampled.total_samples > 0);
        assert!(a.report_text.contains("kitchen-sink"));
        assert!(a.collapsed.contains("gpu_batch"));
        assert_eq!(a.baseline.experiment, "serve-chaos");
    }

    #[test]
    fn quick_serve_profile_covers_every_scenario() {
        let a = profile_serve(true);
        for scenario in ["cold", "nocache", "warm", "warm_b1"] {
            let qph = a
                .baseline
                .metric(&format!("{scenario}.qph"))
                .unwrap_or_else(|| panic!("{scenario}.qph missing"));
            assert!(qph > 0.0, "{scenario}.qph = {qph}");
            assert!(a
                .baseline
                .metric(&format!("wall.{scenario}_makespan_s"))
                .is_some());
            assert!(a
                .baseline
                .metric(&format!("{scenario}.latency_p99_s"))
                .is_some());
        }
        assert!(a.baseline.sampled.total_samples > 0);
        assert!(a.report_text.contains("queries/h"));
        assert!(a.collapsed.contains("gpu_batch"));
    }

    #[test]
    fn quick_serve_xl_profile_holds_the_ablation_orderings() {
        let a = profile_serve_xl(true);
        let qph = |s: &str| {
            a.baseline
                .metric(&format!("{s}.qph"))
                .unwrap_or_else(|| panic!("{s}.qph missing"))
        };
        assert!(
            qph("cold") > qph("nocache"),
            "feature cache must pay for itself at XL scale: cold {} vs nocache {}",
            qph("cold"),
            qph("nocache")
        );
        assert!(
            qph("warm") > qph("warm_b1"),
            "batching must amortize dispatch at XL scale: warm {} vs warm_b1 {}",
            qph("warm"),
            qph("warm_b1")
        );
        // Coalescing is on and the Zipf head is hot enough to collapse
        // concurrent misses in the cold scenario.
        assert!(a.baseline.metric("cold.cache_coalesced").unwrap_or(0.0) > 0.0);
        assert_eq!(a.baseline.experiment, "serve-xl");
    }

    #[test]
    fn quick_msa_sweep_profile_is_deterministic_and_complete() {
        let a = profile_msa_sweep(true);
        let b = profile_msa_sweep(true);
        assert_eq!(
            a.baseline.to_json().pretty(),
            b.baseline.to_json().pretty(),
            "same seed must give a byte-identical baseline"
        );
        assert_eq!(a.collapsed, b.collapsed);
        for t in MSA_THREAD_SWEEP {
            assert!(a.baseline.metric(&format!("sweep.t{t}.wall_s")).unwrap() > 0.0);
        }
        assert!(!a.baseline.symbol_tables[0].rows.is_empty());
        assert!(a.baseline.sampled.total_samples > 0);
        assert!(a.report_text.contains("threads"));
    }
}
