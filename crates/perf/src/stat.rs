//! `perf stat`-style typed sessions.
//!
//! One [`PerfStatReport`] aggregates every counter source of a pipeline
//! run — `simarch::perf::SymbolStats` (CPU), `hmmer::WorkCounters` (DP
//! cells), and the GPU cost log — into the row schema of the paper's
//! Tables III–V, plus the derived metrics a `perf stat` or Nsight session
//! would print: IPC, LLC/dTLB miss ratios, DRAM-bandwidth utilization,
//! and GPU roofline attainment.

use afsb_core::context::SampleSearchData;
use afsb_core::inference_phase::{gpu_for, InferencePhaseResult};
use afsb_core::pipeline::PipelineResult;
use afsb_core::report::{ascii_table, cpu_metrics};
use afsb_gpu::kernel::{roofline_stats, RooflineStats};
use afsb_hmmer::counters::WorkCounters;
use afsb_simarch::perf::PerfReport;
use afsb_simarch::{Platform, SimResult};
use std::fmt::Write as _;

/// One per-symbol row in a Table IV/V-style block, in
/// [`PerfReport::top_by_cycles`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolRow {
    /// Symbol name (the paper's profiled function names).
    pub symbol: String,
    /// Total cycles attributed to the symbol.
    pub cycles: u64,
    /// Share of total cycles, `[0, 1]` (perf's "CPU Cycles %").
    pub cycle_share: f64,
    /// Share of total LLC misses (perf's "Cache Misses %").
    pub cache_miss_share: f64,
    /// Share of total dTLB misses (Table V).
    pub tlb_miss_share: f64,
    /// Share of total page faults (Table V).
    pub page_fault_share: f64,
    /// IPC of the symbol in isolation.
    pub ipc: f64,
}

/// The per-symbol rows of a [`PerfReport`], in exactly the order
/// [`PerfReport::top_by_cycles`] yields — the acceptance contract of the
/// profiler is that its Table III/IV-style blocks never reorder perf's
/// attribution.
pub fn symbol_rows(report: &PerfReport) -> Vec<SymbolRow> {
    report
        .top_by_cycles()
        .into_iter()
        .map(|(name, stats)| SymbolRow {
            symbol: name.to_owned(),
            cycles: stats.cycles(),
            cycle_share: report.cycles_share(name),
            cache_miss_share: report.cache_miss_share(name),
            tlb_miss_share: report.tlb_miss_share(name),
            page_fault_share: report.page_fault_share(name),
            ipc: stats.ipc(),
        })
        .collect()
}

/// Table III-style derived metrics for one simulated CPU phase, extended
/// with the DRAM-bandwidth utilization a `perf stat` memory-bandwidth
/// group would report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuDerived {
    /// Aggregate instructions per cycle.
    pub ipc: f64,
    /// LLC misses per 1000 instructions.
    pub cache_miss_per_kinst: f64,
    /// L1D miss ratio (percent).
    pub l1_miss_pct: f64,
    /// LLC miss ratio (percent).
    pub llc_miss_pct: f64,
    /// dTLB load-miss ratio (percent).
    pub dtlb_miss_pct: f64,
    /// Branch misprediction ratio (percent).
    pub branch_miss_pct: f64,
    /// DRAM bandwidth demand over the platform's peak (percent, capped
    /// at 100 — demand beyond peak shows up as stall cycles, not more
    /// bandwidth).
    pub dram_bw_util_pct: f64,
}

/// Derive the Table III metric block from one simulation result.
pub fn cpu_derived(sim: &SimResult, platform: Platform) -> CpuDerived {
    let m = cpu_metrics(sim);
    let peak = platform.spec().memory.bandwidth_gibs;
    CpuDerived {
        ipc: m.ipc,
        cache_miss_per_kinst: m.cache_miss_per_kinst,
        l1_miss_pct: m.l1_miss_pct,
        llc_miss_pct: m.llc_miss_pct,
        dtlb_miss_pct: m.dtlb_miss_pct,
        branch_miss_pct: m.branch_miss_pct,
        dram_bw_util_pct: (sim.bandwidth_demand_gibs / peak * 100.0).min(100.0),
    }
}

impl CpuDerived {
    /// The metric block as named rows, in Table III order.
    pub fn rows(&self) -> [(&'static str, f64); 7] {
        [
            ("IPC", self.ipc),
            ("Cache Miss (/1k inst)", self.cache_miss_per_kinst),
            ("L1 Miss (%)", self.l1_miss_pct),
            ("LLC Miss (%)", self.llc_miss_pct),
            ("dTLB Miss (%)", self.dtlb_miss_pct),
            ("Branch Miss (%)", self.branch_miss_pct),
            ("DRAM BW Util (%)", self.dram_bw_util_pct),
        ]
    }
}

/// One DP-stage row: exact cell counts from `hmmer::WorkCounters`,
/// named by the paper's Table IV symbols.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage symbol (`calc_band_9`, `calc_band_10`, …).
    pub symbol: String,
    /// DP cells executed.
    pub cells: u64,
    /// Share of all DP cells, `[0, 1]`.
    pub share: f64,
}

/// Per-stage cell attribution rows (stages with zero cells are kept —
/// a vanished stage is a signal, not noise).
pub fn stage_rows(counters: &WorkCounters) -> Vec<StageRow> {
    let total = counters.total_dp_cells().max(1) as f64;
    counters
        .stage_cells()
        .into_iter()
        .map(|(symbol, cells)| StageRow {
            symbol: symbol.to_owned(),
            cells,
            share: cells as f64 / total,
        })
        .collect()
}

/// Nsight-style GPU block: the Fig. 8 lifecycle breakdown plus roofline
/// attainment of the priced kernel log.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuStat {
    /// Device name.
    pub device: String,
    /// Initialization seconds.
    pub init_s: f64,
    /// XLA compile seconds.
    pub xla_compile_s: f64,
    /// GPU compute seconds.
    pub gpu_compute_s: f64,
    /// Finalize seconds.
    pub finalize_s: f64,
    /// Overhead share of the phase, `[0, 1]`.
    pub overhead_share: f64,
    /// Fraction of the working set served through unified memory.
    pub uvm_fraction: f64,
    /// Roofline attainment / SM occupancy summary.
    pub roofline: RooflineStats,
    /// Per-kernel-label seconds, descending (label tiebreak).
    pub per_label_s: Vec<(String, f64)>,
}

/// Build the GPU block from an inference-phase result.
pub fn gpu_stat(inference: &InferencePhaseResult) -> GpuStat {
    let device = gpu_for(inference.platform);
    let b = &inference.breakdown;
    let roofline = roofline_stats(&inference.model.cost_log, &device, b.uvm_fraction);
    let mut per_label_s: Vec<(String, f64)> =
        b.per_label_s.iter().map(|(k, &v)| (k.clone(), v)).collect();
    per_label_s.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    GpuStat {
        device: device.name.to_owned(),
        init_s: b.init_s,
        xla_compile_s: b.xla_compile_s,
        gpu_compute_s: b.gpu_compute_s,
        finalize_s: b.finalize_s,
        overhead_share: b.overhead_share(),
        uvm_fraction: b.uvm_fraction,
        roofline,
        per_label_s,
    }
}

/// The full `perf stat`-style session report for one pipeline run.
#[derive(Debug, Clone)]
pub struct PerfStatReport {
    /// Sample name.
    pub sample: String,
    /// Platform.
    pub platform: Platform,
    /// Worker threads.
    pub threads: usize,
    /// MSA wall seconds.
    pub msa_wall_s: f64,
    /// Inference wall seconds.
    pub inference_wall_s: f64,
    /// End-to-end wall seconds.
    pub total_s: f64,
    /// Table III block for the MSA phase.
    pub msa_derived: CpuDerived,
    /// Table IV-style block: MSA per-symbol attribution.
    pub msa_symbols: Vec<SymbolRow>,
    /// Exact DP-cell attribution per stage (hmmer counters).
    pub stages: Vec<StageRow>,
    /// Table III block for the inference host phase.
    pub host_derived: CpuDerived,
    /// Table V-style block: host-phase per-symbol attribution.
    pub host_symbols: Vec<SymbolRow>,
    /// Nsight-style GPU block.
    pub gpu: GpuStat,
}

impl PerfStatReport {
    /// Build the session report from a pipeline result and its sample's
    /// executed search data.
    pub fn from_pipeline(data: &SampleSearchData, result: &PipelineResult) -> PerfStatReport {
        PerfStatReport {
            sample: result.sample.clone(),
            platform: result.platform,
            threads: result.threads,
            msa_wall_s: result.msa_seconds(),
            inference_wall_s: result.inference_seconds(),
            total_s: result.total_seconds(),
            msa_derived: cpu_derived(&result.msa.sim, result.platform),
            msa_symbols: symbol_rows(&result.msa.sim.report),
            stages: stage_rows(&data.total_counters()),
            host_derived: cpu_derived(&result.inference.host_sim, result.platform),
            host_symbols: symbol_rows(&result.inference.host_sim.report),
            gpu: gpu_stat(&result.inference),
        }
    }

    /// Render the session as the paper's table sequence.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf stat session: {} on {} @ {}T  (msa {:.1}s + inference {:.1}s = {:.1}s)",
            self.sample,
            self.platform,
            self.threads,
            self.msa_wall_s,
            self.inference_wall_s,
            self.total_s
        );

        let derived_rows = |d: &CpuDerived| -> Vec<Vec<String>> {
            d.rows()
                .iter()
                .map(|(name, v)| vec![(*name).to_owned(), format!("{v:.2}")])
                .collect()
        };
        let _ = writeln!(out, "\n== Table III — MSA-phase CPU metrics ==");
        out.push_str(&ascii_table(
            &["Metric", "Value"],
            &derived_rows(&self.msa_derived),
        ));

        let _ = writeln!(out, "\n== Table IV — MSA per-symbol attribution ==");
        out.push_str(&render_symbol_block(&self.msa_symbols));

        let _ = writeln!(out, "\n== DP-stage cells (exact hmmer counters) ==");
        let stage_cells: Vec<Vec<String>> = self
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.symbol.clone(),
                    s.cells.to_string(),
                    format!("{:.2}%", s.share * 100.0),
                ]
            })
            .collect();
        out.push_str(&ascii_table(&["Stage", "Cells", "Share"], &stage_cells));

        let _ = writeln!(out, "\n== Table V — inference host-phase attribution ==");
        out.push_str(&render_symbol_block(&self.host_symbols));
        let _ = writeln!(out, "\nhost CPU metrics:");
        out.push_str(&ascii_table(
            &["Metric", "Value"],
            &derived_rows(&self.host_derived),
        ));

        let _ = writeln!(
            out,
            "\n== GPU ({}) — lifecycle + roofline ==",
            self.gpu.device
        );
        let g = &self.gpu;
        let gpu_rows = vec![
            vec!["init_s".to_owned(), format!("{:.2}", g.init_s)],
            vec![
                "xla_compile_s".to_owned(),
                format!("{:.2}", g.xla_compile_s),
            ],
            vec![
                "gpu_compute_s".to_owned(),
                format!("{:.2}", g.gpu_compute_s),
            ],
            vec!["finalize_s".to_owned(), format!("{:.2}", g.finalize_s)],
            vec![
                "overhead_share".to_owned(),
                format!("{:.1}%", g.overhead_share * 100.0),
            ],
            vec![
                "uvm_fraction".to_owned(),
                format!("{:.1}%", g.uvm_fraction * 100.0),
            ],
            vec![
                "roofline_attainment".to_owned(),
                format!("{:.1}%", g.roofline.attainment * 100.0),
            ],
            vec![
                "sm_occupancy".to_owned(),
                format!("{:.1}%", g.roofline.sm_occupancy * 100.0),
            ],
            vec![
                "memory_bound_frac".to_owned(),
                format!("{:.1}%", g.roofline.memory_bound_fraction * 100.0),
            ],
            vec![
                "launch_share".to_owned(),
                format!("{:.2}%", g.roofline.launch_share * 100.0),
            ],
        ];
        out.push_str(&ascii_table(&["Counter", "Value"], &gpu_rows));

        let _ = writeln!(out, "\ntop kernels:");
        let kernel_rows: Vec<Vec<String>> = g
            .per_label_s
            .iter()
            .take(8)
            .map(|(label, s)| vec![label.clone(), format!("{s:.3}s")])
            .collect();
        out.push_str(&ascii_table(&["Kernel", "Time"], &kernel_rows));
        out
    }
}

fn render_symbol_block(rows: &[SymbolRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.symbol.clone(),
                format!("{:.2}%", r.cycle_share * 100.0),
                format!("{:.2}%", r.cache_miss_share * 100.0),
                format!("{:.2}%", r.tlb_miss_share * 100.0),
                format!("{:.2}%", r.page_fault_share * 100.0),
                format!("{:.2}", r.ipc),
            ]
        })
        .collect();
    ascii_table(
        &["Symbol", "Cycles", "CacheMiss", "dTLBMiss", "Faults", "IPC"],
        &cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use afsb_simarch::perf::SymbolStats;
    use std::collections::HashMap;

    fn report() -> PerfReport {
        let mut m = HashMap::new();
        m.insert(
            "calc_band_9",
            SymbolStats {
                base_cycles: 900,
                instructions: 1800,
                llc_misses: 30,
                llc_accesses: 60,
                ..SymbolStats::default()
            },
        );
        m.insert(
            "addbuf",
            SymbolStats {
                base_cycles: 100,
                instructions: 150,
                llc_misses: 70,
                llc_accesses: 140,
                ..SymbolStats::default()
            },
        );
        PerfReport::new(m)
    }

    #[test]
    fn symbol_rows_preserve_perf_order_and_shares() {
        let r = report();
        let rows = symbol_rows(&r);
        let expected: Vec<&str> = r.top_by_cycles().into_iter().map(|(n, _)| n).collect();
        let got: Vec<&str> = rows.iter().map(|x| x.symbol.as_str()).collect();
        assert_eq!(got, expected);
        assert!((rows.iter().map(|r| r.cycle_share).sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].symbol, "calc_band_9");
        assert!((rows[0].cycle_share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn stage_rows_share_sums_to_one() {
        let c = WorkCounters {
            band_cells_mi: 600,
            band_cells_ds: 300,
            forward_cells: 100,
            ..WorkCounters::default()
        };
        let rows = stage_rows(&c);
        assert_eq!(rows.len(), 6);
        assert!((rows.iter().map(|r| r.share).sum::<f64>() - 1.0).abs() < 1e-12);
        let band = rows.iter().find(|r| r.symbol == "calc_band_9").unwrap();
        assert_eq!(band.cells, 600);
        assert!((band.share - 0.6).abs() < 1e-12);
    }
}
