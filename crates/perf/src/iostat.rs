//! `iostat -x`-style device sampling over the simulated storage model.
//!
//! `simarch::storage` prices an I/O phase as one aggregate
//! [`IostatSample`]; this module unrolls that phase into a per-interval
//! time series the way `iostat` samples a live device: the device
//! streams the phase's cold bytes at peak rate until the transfer
//! completes, then idles — and once compute finishes, any remaining
//! transfer time is a pure stall (the paper's Desktop tail, where the
//! NVMe pins at 100 % while the CPU waits).

use afsb_core::msa_phase::MsaPhaseResult;
use afsb_simarch::storage::StorageModel;
use std::fmt::Write as _;

/// One sampled interval of device activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSample {
    /// Interval start, simulated seconds from phase start.
    pub t_s: f64,
    /// Read throughput achieved in the interval (MiB/s).
    pub read_mibs: f64,
    /// Device utilization in percent (0–100).
    pub util_pct: f64,
    /// Average read latency (ms).
    pub r_await_ms: f64,
    /// Average queue depth.
    pub aqu_sz: f64,
    /// Fraction of the interval compute spent stalled on the device.
    pub stall_frac: f64,
}

/// A per-interval device time series for one I/O phase.
#[derive(Debug, Clone, PartialEq)]
pub struct IostatTimeline {
    /// Sampling interval (simulated seconds).
    pub interval_s: f64,
    /// The samples, in time order.
    pub samples: Vec<DeviceSample>,
}

impl IostatTimeline {
    /// Sample an MSA phase's storage behaviour every `interval_s`
    /// simulated seconds. The model: the device streams `cold_bytes`
    /// at its sequential peak starting at t=0, overlapped with compute
    /// (`cpu_seconds`); intervals after compute ends but before the
    /// transfer completes are stalls.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not a positive finite number.
    pub fn sample_msa(msa: &MsaPhaseResult, interval_s: f64) -> IostatTimeline {
        assert!(
            interval_s.is_finite() && interval_s > 0.0,
            "sampling interval must be positive and finite"
        );
        let spec = msa.platform.spec();
        let model = StorageModel::new(spec.storage);
        let peak = model.peak_bytes_per_sec(true);
        let transfer_s = msa.cold_bytes as f64 / peak;
        let compute_s = msa.cpu_seconds;
        let wall = transfer_s.max(compute_s);
        let queue_depth = model.config().queue_depth as f64;
        let base_latency_ms = model.config().base_latency_ms;

        let mut samples = Vec::new();
        let ticks = (wall / interval_s).ceil() as u64;
        for k in 0..ticks {
            let t0 = k as f64 * interval_s;
            let t1 = (t0 + interval_s).min(wall);
            let width = (t1 - t0).max(1e-12);
            let busy = overlap(t0, t1, 0.0, transfer_s) / width;
            let stall = overlap(t0, t1, compute_s, wall) / width;
            samples.push(DeviceSample {
                t_s: t0,
                read_mibs: busy * peak / (1u64 << 20) as f64,
                util_pct: busy * 100.0,
                r_await_ms: base_latency_ms * (1.0 + busy),
                aqu_sz: busy * queue_depth * 0.2,
                stall_frac: stall,
            });
        }
        IostatTimeline {
            interval_s,
            samples,
        }
    }

    /// Mean utilization over the whole timeline (percent).
    pub fn mean_util_pct(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.util_pct).sum::<f64>() / self.samples.len() as f64
    }

    /// Total stall time (simulated seconds compute spent waiting).
    pub fn stall_seconds(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.stall_frac * self.interval_s)
            .sum()
    }

    /// Render as `iostat -x`-style rows.
    pub fn render(&self) -> String {
        let mut out = format!("iostat timeline ({}s interval):\n", self.interval_s);
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>7} {:>9} {:>7} {:>7}",
            "t", "rMB/s", "%util", "r_await", "aqu-sz", "%stall"
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{:>8.1} {:>10.1} {:>7.1} {:>9.2} {:>7.2} {:>7.1}",
                s.t_s,
                s.read_mibs,
                s.util_pct,
                s.r_await_ms,
                s.aqu_sz,
                s.stall_frac * 100.0
            );
        }
        out
    }
}

fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afsb_core::context::{BenchContext, ContextConfig};
    use afsb_core::msa_phase::{run_msa_phase, MsaPhaseOptions};
    use afsb_seq::samples::SampleId;
    use afsb_simarch::Platform;

    fn msa(platform: Platform) -> MsaPhaseResult {
        let mut ctx = BenchContext::new(ContextConfig::test());
        let data = ctx.sample_data(SampleId::Promo);
        run_msa_phase(
            &data,
            platform,
            4,
            &MsaPhaseOptions {
                sample_cap: 120_000,
                ..MsaPhaseOptions::default()
            },
        )
    }

    #[test]
    fn desktop_timeline_shows_io_and_stall_matches_model() {
        let r = msa(Platform::Desktop);
        assert!(r.cold_bytes > 0, "Promo must read cold on the desktop");
        let tl = IostatTimeline::sample_msa(&r, r.wall_seconds() / 50.0);
        assert!(!tl.samples.is_empty());
        assert!(tl.mean_util_pct() > 0.0);
        // Total stall time reproduces the storage model's io_added.
        let tol = tl.interval_s * 2.0;
        assert!(
            (tl.stall_seconds() - r.io_added_seconds).abs() <= tol,
            "stall {} vs io_added {}",
            tl.stall_seconds(),
            r.io_added_seconds
        );
        // Determinism.
        assert_eq!(tl, IostatTimeline::sample_msa(&r, r.wall_seconds() / 50.0));
    }

    #[test]
    fn warm_server_timeline_is_idle() {
        let r = msa(Platform::Server);
        assert_eq!(r.cold_bytes, 0, "server page cache holds the databases");
        let tl = IostatTimeline::sample_msa(&r, 1.0);
        assert_eq!(tl.mean_util_pct(), 0.0);
        assert_eq!(tl.stall_seconds(), 0.0);
        assert!(tl.render().contains("%util"));
    }
}
