//! `afsb-perf`: deterministic perf-stat/Nsight-style profiler over the
//! simulated pipeline, with baseline diffing for a CI regression gate.
//!
//! Where the PR-3 tracer (`rt::obs` + `core::trace`) answers *what
//! happened when* — a span tree on the simulated clock — this crate
//! answers *where the cycles went and did that change*:
//!
//! * [`stat`] — `perf stat`-style typed session: every counter source
//!   (CPU [`afsb_simarch::perf::SymbolStats`], hmmer DP cells, the GPU
//!   cost log) folded into the paper's Table III–V row schema with
//!   derived metrics (IPC, LLC/dTLB miss ratios, DRAM-BW utilization,
//!   roofline attainment).
//! * [`record`] — `perf record`-style sampled profile: probe the span
//!   stack at a fixed simulated-time interval, emit top-N tables and
//!   collapsed stacks. Deterministic — no wall clock anywhere.
//! * [`iostat`] — `iostat -x`-style per-interval device timeline over
//!   the simulated storage model.
//! * [`profile`] — experiment drivers (`pipeline`, `msa-sweep`) that
//!   run a workload under the tracer and fold everything above into a
//!   single diffable baseline.
//! * [`baseline`] — `BENCH_<experiment>.json` serialization and the
//!   tolerance-based diff engine behind `afsysbench perf-diff`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod iostat;
pub mod profile;
pub mod record;
pub mod stat;

pub use baseline::{diff, DiffReport, DiffTolerances, PerfBaseline};
pub use profile::{baseline_file_name, run_profile, ProfileArtifacts, PROFILE_EXPERIMENTS};
pub use record::SampledProfile;
pub use stat::PerfStatReport;
