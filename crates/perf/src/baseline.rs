//! Perf baselines and the regression-diff engine.
//!
//! `afsysbench profile <experiment>` serializes a [`PerfBaseline`] to
//! `BENCH_<experiment>.json` (deterministic field order, byte-identical
//! across same-seed runs); `afsysbench perf-diff <baseline> <current>`
//! re-reads two of them and compares wall seconds, derived metrics,
//! per-symbol cycle shares, and the sampled top-N against configurable
//! tolerances — nonzero exit on regression, offending symbols named.

use crate::record::SampledProfile;
use crate::stat::SymbolRow;
use afsb_rt::json::obj;
use afsb_rt::{FromJson, Json, JsonError, ToJson};
use std::fmt::Write as _;

/// Schema tag embedded in every baseline file.
pub const SCHEMA: &str = "afsb-perf-baseline-v1";

/// One named symbol table (e.g. the MSA-phase or host-phase block).
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolTable {
    /// Table name (`msa`, `host`, …).
    pub name: String,
    /// Rows in perf-report order.
    pub rows: Vec<SymbolRow>,
}

/// Summary of a sampled profile stored in a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampledSummary {
    /// Sampling interval (simulated seconds).
    pub interval_s: f64,
    /// Total samples.
    pub total_samples: u64,
    /// Top leaf symbols by sampled share, descending.
    pub top: Vec<(String, f64)>,
}

impl SampledSummary {
    /// Summarize a profile's top `n` leaves.
    pub fn from_profile(profile: &SampledProfile, n: usize) -> SampledSummary {
        SampledSummary {
            interval_s: profile.interval_s(),
            total_samples: profile.total_samples(),
            top: profile.top(n),
        }
    }
}

/// A committed perf baseline: everything `perf-diff` gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaseline {
    /// Experiment name (`pipeline`, `msa-sweep`).
    pub experiment: String,
    /// Deterministic seed the profile ran with.
    pub seed: u64,
    /// Whether the quick (test-scale) configuration was used.
    pub quick: bool,
    /// Named scalar metrics (`wall.msa_s`, `derived.ipc`, …), ordered.
    pub metrics: Vec<(String, f64)>,
    /// Per-symbol tables.
    pub symbol_tables: Vec<SymbolTable>,
    /// Sampled-profile summary.
    pub sampled: SampledSummary,
}

impl PerfBaseline {
    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a symbol table by name.
    pub fn table(&self, name: &str) -> Option<&SymbolTable> {
        self.symbol_tables.iter().find(|t| t.name == name)
    }
}

impl ToJson for PerfBaseline {
    fn to_json(&self) -> Json {
        let metrics = Json::Arr(
            self.metrics
                .iter()
                .map(|(name, value)| {
                    obj()
                        .field("name", name.as_str())
                        .field("value", *value)
                        .build()
                })
                .collect(),
        );
        let tables = Json::Arr(
            self.symbol_tables
                .iter()
                .map(|t| {
                    let rows = Json::Arr(t.rows.iter().map(symbol_row_json).collect());
                    obj()
                        .field("name", t.name.as_str())
                        .field("rows", rows)
                        .build()
                })
                .collect(),
        );
        let top = Json::Arr(
            self.sampled
                .top
                .iter()
                .map(|(symbol, share)| {
                    obj()
                        .field("symbol", symbol.as_str())
                        .field("share", *share)
                        .build()
                })
                .collect(),
        );
        let sampled = obj()
            .field("interval_s", self.sampled.interval_s)
            .field("total_samples", self.sampled.total_samples)
            .field("top", top)
            .build();
        obj()
            .field("schema", SCHEMA)
            .field("experiment", self.experiment.as_str())
            .field("seed", self.seed)
            .field("quick", self.quick)
            .field("metrics", metrics)
            .field("symbol_tables", tables)
            .field("sampled", sampled)
            .build()
    }
}

fn symbol_row_json(r: &SymbolRow) -> Json {
    obj()
        .field("symbol", r.symbol.as_str())
        .field("cycles", r.cycles)
        .field("cycle_share", r.cycle_share)
        .field("cache_miss_share", r.cache_miss_share)
        .field("tlb_miss_share", r.tlb_miss_share)
        .field("page_fault_share", r.page_fault_share)
        .field("ipc", r.ipc)
        .build()
}

fn symbol_row_from(v: &Json) -> Result<SymbolRow, JsonError> {
    let f = |key: &str| -> Result<f64, JsonError> {
        v.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::msg(format!("`{key}` must be a number")))
    };
    Ok(SymbolRow {
        symbol: v
            .field("symbol")?
            .as_str()
            .ok_or_else(|| JsonError::msg("`symbol` must be a string"))?
            .to_owned(),
        cycles: v
            .field("cycles")?
            .as_u64()
            .ok_or_else(|| JsonError::msg("`cycles` must be a u64"))?,
        cycle_share: f("cycle_share")?,
        cache_miss_share: f("cache_miss_share")?,
        tlb_miss_share: f("tlb_miss_share")?,
        page_fault_share: f("page_fault_share")?,
        ipc: f("ipc")?,
    })
}

impl FromJson for PerfBaseline {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = v.field("schema")?.as_str().unwrap_or_default();
        if schema != SCHEMA {
            return Err(JsonError::msg(format!(
                "unsupported baseline schema `{schema}` (want `{SCHEMA}`)"
            )));
        }
        let mut metrics = Vec::new();
        for m in v
            .field("metrics")?
            .as_array()
            .ok_or_else(|| JsonError::msg("`metrics` must be an array"))?
        {
            let name = m
                .field("name")?
                .as_str()
                .ok_or_else(|| JsonError::msg("metric `name` must be a string"))?
                .to_owned();
            let value = m
                .field("value")?
                .as_f64()
                .ok_or_else(|| JsonError::msg("metric `value` must be a number"))?;
            metrics.push((name, value));
        }
        let mut symbol_tables = Vec::new();
        for t in v
            .field("symbol_tables")?
            .as_array()
            .ok_or_else(|| JsonError::msg("`symbol_tables` must be an array"))?
        {
            let name = t
                .field("name")?
                .as_str()
                .ok_or_else(|| JsonError::msg("table `name` must be a string"))?
                .to_owned();
            let mut rows = Vec::new();
            for r in t
                .field("rows")?
                .as_array()
                .ok_or_else(|| JsonError::msg("table `rows` must be an array"))?
            {
                rows.push(symbol_row_from(r)?);
            }
            symbol_tables.push(SymbolTable { name, rows });
        }
        let s = v.field("sampled")?;
        let mut top = Vec::new();
        for entry in s
            .field("top")?
            .as_array()
            .ok_or_else(|| JsonError::msg("sampled `top` must be an array"))?
        {
            top.push((
                entry
                    .field("symbol")?
                    .as_str()
                    .ok_or_else(|| JsonError::msg("sampled `symbol` must be a string"))?
                    .to_owned(),
                entry
                    .field("share")?
                    .as_f64()
                    .ok_or_else(|| JsonError::msg("sampled `share` must be a number"))?,
            ));
        }
        Ok(PerfBaseline {
            experiment: v
                .field("experiment")?
                .as_str()
                .ok_or_else(|| JsonError::msg("`experiment` must be a string"))?
                .to_owned(),
            seed: v
                .field("seed")?
                .as_u64()
                .ok_or_else(|| JsonError::msg("`seed` must be a u64"))?,
            quick: matches!(v.field("quick")?, Json::Bool(true)),
            metrics,
            symbol_tables,
            sampled: SampledSummary {
                interval_s: s
                    .field("interval_s")?
                    .as_f64()
                    .ok_or_else(|| JsonError::msg("`interval_s` must be a number"))?,
                total_samples: s
                    .field("total_samples")?
                    .as_u64()
                    .ok_or_else(|| JsonError::msg("`total_samples` must be a u64"))?,
                top,
            },
        })
    }
}

/// Tolerances for [`diff`]. Everything is deterministic, so identical
/// code produces identical baselines — tolerances exist to let small
/// *intentional* model changes through while catching real shifts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffTolerances {
    /// Per-symbol cycle-share drift allowed: flagged when
    /// `|cur − base| > max(cycle_share_abs, cycle_share_rel · base)`.
    /// The defaults catch any ≥ 10 % relative regression of a symbol
    /// holding ≥ 1 % of cycles.
    pub cycle_share_abs: f64,
    /// Relative component of the cycle-share band.
    pub cycle_share_rel: f64,
    /// Allowed relative wall-time increase (`wall.*` metrics; one-sided —
    /// getting faster never fails, it suggests re-baselining).
    pub wall_rel: f64,
    /// Allowed relative drift of other derived metrics (two-sided).
    pub metric_rel: f64,
    /// Absolute floor of the non-wall metric band: a metric is flagged
    /// when `|cur − base| > max(metric_abs, metric_rel · |base|)`. The
    /// floor keeps zero-baseline metrics from flagging on sub-noise
    /// drift while still catching a real zero→nonzero regression.
    pub metric_abs: f64,
    /// Allowed absolute drift of a sampled top-N share.
    pub sampled_abs: f64,
}

impl Default for DiffTolerances {
    fn default() -> DiffTolerances {
        DiffTolerances {
            cycle_share_abs: 0.01,
            cycle_share_rel: 0.08,
            wall_rel: 0.05,
            metric_rel: 0.15,
            metric_abs: 0.01,
            sampled_abs: 0.03,
        }
    }
}

/// One regression found by [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What regressed (metric name or `table/symbol` path).
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Human-readable explanation.
    pub detail: String,
}

/// The outcome of a baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Regressions (non-empty fails the gate).
    pub regressions: Vec<Finding>,
    /// Non-failing observations (improvements, new cold symbols).
    pub notes: Vec<String>,
    /// Values compared.
    pub compared: usize,
    /// Scalar metrics compared (subset of `compared`).
    pub metrics_compared: usize,
    /// Symbol rows compared — per-symbol table rows plus the sampled
    /// top-N (subset of `compared`).
    pub symbol_rows_compared: usize,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Values that landed within tolerance.
    pub fn within_tolerance(&self) -> usize {
        self.compared.saturating_sub(self.regressions.len())
    }

    /// Render the comparison outcome.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(
                out,
                "perf-diff OK: {} metrics, {} symbol rows compared, {} within tolerance",
                self.metrics_compared,
                self.symbol_rows_compared,
                self.within_tolerance()
            );
        } else {
            let _ = writeln!(
                out,
                "perf-diff FAILED: {} regression(s) over {} compared values",
                self.regressions.len(),
                self.compared
            );
            for f in &self.regressions {
                let _ = writeln!(
                    out,
                    "  REGRESSION {:<40} baseline {:>12.6}  current {:>12.6}  ({})",
                    f.name, f.baseline, f.current, f.detail
                );
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Compare a current profile against a committed baseline.
pub fn diff(baseline: &PerfBaseline, current: &PerfBaseline, tol: &DiffTolerances) -> DiffReport {
    let mut report = DiffReport::default();

    if baseline.experiment != current.experiment || baseline.quick != current.quick {
        report.regressions.push(Finding {
            name: "baseline/identity".into(),
            baseline: 0.0,
            current: 0.0,
            detail: format!(
                "incomparable profiles: baseline is `{}` (quick={}), current is `{}` (quick={})",
                baseline.experiment, baseline.quick, current.experiment, current.quick
            ),
        });
        return report;
    }

    for (name, base) in &baseline.metrics {
        report.compared += 1;
        report.metrics_compared += 1;
        let Some(cur) = current.metric(name) else {
            report.regressions.push(Finding {
                name: name.clone(),
                baseline: *base,
                current: f64::NAN,
                detail: "metric missing from current profile".into(),
            });
            continue;
        };
        if name.starts_with("wall.") {
            if cur > base * (1.0 + tol.wall_rel) + 1e-9 {
                report.regressions.push(Finding {
                    name: name.clone(),
                    baseline: *base,
                    current: cur,
                    detail: format!(
                        "wall time up {:.1}% (tolerance {:.0}%)",
                        (cur / base - 1.0) * 100.0,
                        tol.wall_rel * 100.0
                    ),
                });
            } else if cur < base * (1.0 - tol.wall_rel) {
                report.notes.push(format!(
                    "{name} improved {:.1}% — consider re-baselining",
                    (1.0 - cur / base) * 100.0
                ));
            }
        } else if (cur - base).abs() > tol.metric_abs.max(tol.metric_rel * base.abs()) {
            report.regressions.push(Finding {
                name: name.clone(),
                baseline: *base,
                current: cur,
                detail: format!(
                    "metric drifted beyond max(±{:.3}, ±{:.0}%)",
                    tol.metric_abs,
                    tol.metric_rel * 100.0
                ),
            });
        }
    }

    // Metrics only the current profile has are regressions too: a renamed
    // or newly added metric (wall.* included) must force a re-baseline,
    // not sail through because the baseline never knew its name.
    for (name, cur) in &current.metrics {
        if baseline.metric(name).is_none() {
            report.compared += 1;
            report.metrics_compared += 1;
            report.regressions.push(Finding {
                name: name.clone(),
                baseline: f64::NAN,
                current: *cur,
                detail: "metric missing from baseline (new or renamed; re-baseline to accept)"
                    .into(),
            });
        }
    }

    for table in &baseline.symbol_tables {
        let cur_table = current.table(&table.name);
        if cur_table.is_none() {
            report.compared += 1;
            report.regressions.push(Finding {
                name: table.name.clone(),
                baseline: table.rows.len() as f64,
                current: 0.0,
                detail: "symbol table missing from current profile".into(),
            });
        }
        for row in &table.rows {
            report.compared += 1;
            report.symbol_rows_compared += 1;
            let path = format!("{}/{}", table.name, row.symbol);
            let cur_row = cur_table.and_then(|t| t.rows.iter().find(|r| r.symbol == row.symbol));
            let Some(cur_row) = cur_row else {
                report.regressions.push(Finding {
                    name: path,
                    baseline: row.cycle_share,
                    current: 0.0,
                    detail: "symbol missing from current profile".into(),
                });
                continue;
            };
            let band = tol
                .cycle_share_abs
                .max(tol.cycle_share_rel * row.cycle_share);
            let delta = cur_row.cycle_share - row.cycle_share;
            if delta.abs() > band {
                report.regressions.push(Finding {
                    name: path,
                    baseline: row.cycle_share,
                    current: cur_row.cycle_share,
                    detail: format!(
                        "cycle share shifted {:+.2} pp (band ±{:.2} pp)",
                        delta * 100.0,
                        band * 100.0
                    ),
                });
            }
        }
        if let Some(cur_table) = cur_table {
            for r in &cur_table.rows {
                let known = table.rows.iter().any(|b| b.symbol == r.symbol);
                if !known && r.cycle_share > tol.cycle_share_abs {
                    report.regressions.push(Finding {
                        name: format!("{}/{}", table.name, r.symbol),
                        baseline: 0.0,
                        current: r.cycle_share,
                        detail: "new hot symbol not in baseline".into(),
                    });
                }
            }
        }
    }

    // Whole tables only the current profile has (the per-row pass above
    // can only see tables the baseline already names).
    for table in &current.symbol_tables {
        if baseline.table(&table.name).is_none() {
            report.compared += 1;
            report.regressions.push(Finding {
                name: table.name.clone(),
                baseline: 0.0,
                current: table.rows.len() as f64,
                detail: "symbol table missing from baseline (new table; re-baseline to accept)"
                    .into(),
            });
        }
    }

    for (symbol, base_share) in &baseline.sampled.top {
        report.compared += 1;
        report.symbol_rows_compared += 1;
        let cur_share = current
            .sampled
            .top
            .iter()
            .find(|(s, _)| s == symbol)
            .map(|&(_, v)| v);
        match cur_share {
            Some(cur) if (cur - base_share).abs() <= tol.sampled_abs => {}
            Some(cur) => report.regressions.push(Finding {
                name: format!("sampled/{symbol}"),
                baseline: *base_share,
                current: cur,
                detail: format!(
                    "sampled share shifted {:+.2} pp (band ±{:.2} pp)",
                    (cur - base_share) * 100.0,
                    tol.sampled_abs * 100.0
                ),
            }),
            None => report.regressions.push(Finding {
                name: format!("sampled/{symbol}"),
                baseline: *base_share,
                current: 0.0,
                detail: "symbol dropped out of the sampled top-N".into(),
            }),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(symbol: &str, share: f64) -> SymbolRow {
        SymbolRow {
            symbol: symbol.to_owned(),
            cycles: (share * 1e6) as u64,
            cycle_share: share,
            cache_miss_share: share / 2.0,
            tlb_miss_share: 0.0,
            page_fault_share: 0.0,
            ipc: 1.5,
        }
    }

    fn baseline() -> PerfBaseline {
        PerfBaseline {
            experiment: "pipeline".into(),
            seed: 17,
            quick: true,
            metrics: vec![("wall.total_s".into(), 100.0), ("derived.ipc".into(), 1.25)],
            symbol_tables: vec![SymbolTable {
                name: "msa".into(),
                rows: vec![row("calc_band_9", 0.30), row("addbuf", 0.15)],
            }],
            sampled: SampledSummary {
                interval_s: 0.01,
                total_samples: 4000,
                top: vec![("calc_band_9".into(), 0.29)],
            },
        }
    }

    #[test]
    fn json_round_trip_is_lossless_and_deterministic() {
        let b = baseline();
        let text = b.to_json().pretty();
        assert_eq!(text, b.to_json().pretty());
        let parsed = PerfBaseline::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn identical_profiles_pass() {
        let b = baseline();
        let d = diff(&b, &b, &DiffTolerances::default());
        assert!(d.passed(), "{}", d.render());
        assert!(d.compared > 0);
    }

    #[test]
    fn pass_summary_counts_metrics_and_symbol_rows() {
        let b = baseline();
        let d = diff(&b, &b, &DiffTolerances::default());
        assert!(d.passed());
        assert_eq!(d.metrics_compared, 2);
        assert_eq!(d.symbol_rows_compared, 3, "2 table rows + 1 sampled");
        assert_eq!(d.within_tolerance(), d.compared);
        let rendered = d.render();
        assert!(
            rendered
                .starts_with("perf-diff OK: 2 metrics, 3 symbol rows compared, 5 within tolerance"),
            "{rendered}"
        );
    }

    #[test]
    fn ten_percent_cycle_share_regression_fails_and_names_symbol() {
        let b = baseline();
        let mut cur = b.clone();
        // calc_band_9: 0.30 → 0.333 (+11 % relative) — beyond the
        // max(0.01, 0.08·0.30) = 0.024 band.
        cur.symbol_tables[0].rows[0].cycle_share = 0.333;
        let d = diff(&b, &cur, &DiffTolerances::default());
        assert!(!d.passed());
        let rendered = d.render();
        assert!(
            rendered.contains("msa/calc_band_9"),
            "offending symbol must be named:\n{rendered}"
        );
    }

    #[test]
    fn wall_regression_one_sided() {
        let b = baseline();
        let mut slow = b.clone();
        slow.metrics[0].1 = 110.0; // +10 % wall
        assert!(!diff(&b, &slow, &DiffTolerances::default()).passed());
        let mut fast = b.clone();
        fast.metrics[0].1 = 80.0; // −20 % wall: pass with a note
        let d = diff(&b, &fast, &DiffTolerances::default());
        assert!(d.passed());
        assert!(!d.notes.is_empty());
    }

    #[test]
    fn current_only_metric_fails_and_is_named() {
        let b = baseline();
        let mut cur = b.clone();
        cur.metrics.push(("wall.sneaky_s".into(), 42.0));
        let d = diff(&b, &cur, &DiffTolerances::default());
        assert!(!d.passed());
        let rendered = d.render();
        assert!(
            rendered.contains("wall.sneaky_s") && rendered.contains("missing from baseline"),
            "current-only metric must be named:\n{rendered}"
        );
    }

    #[test]
    fn symbol_table_missing_from_either_side_fails() {
        let b = baseline();
        let mut gone = b.clone();
        gone.symbol_tables.clear();
        let d = diff(&b, &gone, &DiffTolerances::default());
        assert!(!d.passed());
        assert!(
            d.render().contains("missing from current profile"),
            "{}",
            d.render()
        );

        let mut added = b.clone();
        added.symbol_tables.push(SymbolTable {
            name: "gpu".into(),
            rows: vec![row("attn_kernel", 0.4)],
        });
        let d = diff(&b, &added, &DiffTolerances::default());
        assert!(!d.passed());
        let rendered = d.render();
        assert!(
            rendered.contains("gpu") && rendered.contains("missing from baseline"),
            "current-only table must be named:\n{rendered}"
        );
    }

    #[test]
    fn zero_baseline_metric_uses_absolute_floor() {
        let mut b = baseline();
        b.metrics.push(("derived.uvm_fraction".into(), 0.0));
        let mut small = b.clone();
        small.metrics.last_mut().unwrap().1 = 0.005; // within metric_abs = 0.01
        assert!(
            diff(&b, &small, &DiffTolerances::default()).passed(),
            "sub-floor drift off a zero baseline must pass"
        );
        let mut big = b.clone();
        big.metrics.last_mut().unwrap().1 = 0.02; // beyond the floor
        let d = diff(&b, &big, &DiffTolerances::default());
        assert!(!d.passed());
        assert!(
            d.render().contains("derived.uvm_fraction"),
            "{}",
            d.render()
        );
    }

    #[test]
    fn missing_symbol_and_mode_mismatch_fail() {
        let b = baseline();
        let mut cur = b.clone();
        cur.symbol_tables[0].rows.remove(0);
        assert!(!diff(&b, &cur, &DiffTolerances::default()).passed());

        let mut full = b.clone();
        full.quick = false;
        let d = diff(&b, &full, &DiffTolerances::default());
        assert!(!d.passed());
        assert!(d.render().contains("incomparable"));
    }
}
