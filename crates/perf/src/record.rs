//! `perf record`-style sampled profiles over the deterministic tracer.
//!
//! A real sampling profiler interrupts the program at a fixed interval
//! and records the call stack. Here the "program" is the simulated-time
//! span tree of `rt::obs::Tracer`: [`SampledProfile::capture`] probes the
//! span stack every `interval_s` *simulated* seconds (no wall clock
//! anywhere), so the same trace always yields the byte-identical profile.
//!
//! # Sampling tolerance
//!
//! Samples are taken at bucket midpoints, so a contiguous span of
//! duration `d` receives between `floor(d / interval) - 1` and
//! `floor(d / interval) + 1` hits. For a leaf symbol covering `k`
//! contiguous regions of the trace, the sampled share therefore differs
//! from the exact duration share by at most `(k + 1) * interval /
//! extent` — with the default ≥ 2000 samples and singly-tiled symbol
//! spans this is under 0.1 percentage points. Tests in this crate assert
//! agreement with exact cycle attribution within 2 percentage points,
//! which additionally absorbs the cycles-vs-duration quantization of
//! span tiling.

use afsb_core::report::ascii_table;
use afsb_rt::obs::Tracer;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default number of samples [`SampledProfile::capture_n`] aims for.
pub const DEFAULT_SAMPLES: u64 = 4000;

/// A deterministic sampled profile: collapsed stacks with hit counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledProfile {
    interval_s: f64,
    total: u64,
    /// Collapsed stack (`root;child;leaf`) → samples, sorted by stack.
    stacks: Vec<(String, u64)>,
}

impl SampledProfile {
    /// Probe the tracer's span stack every `interval_s` simulated
    /// seconds (see [`Tracer::sample_stacks`]).
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not a positive finite number.
    pub fn capture(tracer: &Tracer, interval_s: f64) -> SampledProfile {
        let stacks: Vec<(String, u64)> = tracer.sample_stacks(interval_s).into_iter().collect();
        let total = stacks.iter().map(|(_, c)| c).sum();
        SampledProfile {
            interval_s,
            total,
            stacks,
        }
    }

    /// Capture with the interval derived from the trace extent so the
    /// profile holds about `target_samples` samples. Returns an empty
    /// profile for an empty trace.
    pub fn capture_n(tracer: &Tracer, target_samples: u64) -> SampledProfile {
        let extent = tracer.extent_seconds();
        if extent <= 0.0 || target_samples == 0 {
            return SampledProfile {
                interval_s: 1.0,
                total: 0,
                stacks: Vec::new(),
            };
        }
        SampledProfile::capture(tracer, extent / target_samples as f64)
    }

    /// The sampling interval in simulated seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Total samples that hit any span.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Collapsed stacks (`root;child;leaf count` lines, sorted) — the
    /// flamegraph input format.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            let _ = writeln!(out, "{stack} {count}");
        }
        out
    }

    /// Per-leaf-symbol sample shares, descending (symbol tiebreak). The
    /// leaf of each stack is the symbol "on CPU" — exactly what perf's
    /// self-time report shows.
    pub fn leaf_shares(&self) -> Vec<(String, f64)> {
        let mut leaves: BTreeMap<&str, u64> = BTreeMap::new();
        for (stack, count) in &self.stacks {
            let leaf = stack.rsplit(';').next().unwrap_or(stack);
            *leaves.entry(leaf).or_insert(0) += count;
        }
        let total = self.total.max(1) as f64;
        let mut rows: Vec<(String, f64)> = leaves
            .into_iter()
            .map(|(leaf, count)| (leaf.to_owned(), count as f64 / total))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        rows
    }

    /// Sampled share of one leaf symbol (0 when never sampled).
    pub fn leaf_share(&self, symbol: &str) -> f64 {
        self.leaf_shares()
            .into_iter()
            .find(|(name, _)| name == symbol)
            .map_or(0.0, |(_, share)| share)
    }

    /// The top `n` leaf symbols by sampled share.
    pub fn top(&self, n: usize) -> Vec<(String, f64)> {
        self.leaf_shares().into_iter().take(n).collect()
    }

    /// Render the top-N hot-symbol report.
    pub fn render_top(&self, n: usize) -> String {
        let mut out = format!(
            "sampled profile: {} samples @ {:.6}s simulated interval\n",
            self.total, self.interval_s
        );
        let rows: Vec<Vec<String>> = self
            .top(n)
            .into_iter()
            .map(|(symbol, share)| vec![symbol, format!("{:.2}%", share * 100.0)])
            .collect();
        out.push_str(&ascii_table(&["Symbol", "Samples"], &rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiled_tracer() -> Tracer {
        let mut t = Tracer::new();
        t.begin("run");
        t.closed_span("hot", 0.0, 7.0);
        t.closed_span("warm", 7.0, 2.0);
        t.closed_span("cold", 9.0, 1.0);
        t.advance(10.0);
        t.end();
        t
    }

    #[test]
    fn sampled_shares_match_durations() {
        let p = SampledProfile::capture(&tiled_tracer(), 0.005);
        assert!(
            (p.leaf_share("hot") - 0.7).abs() < 0.002,
            "{}",
            p.leaf_share("hot")
        );
        assert!((p.leaf_share("warm") - 0.2).abs() < 0.002);
        assert!((p.leaf_share("cold") - 0.1).abs() < 0.002);
        assert_eq!(p.leaf_share("missing"), 0.0);
        let top = p.top(2);
        assert_eq!(top[0].0, "hot");
        assert_eq!(top[1].0, "warm");
    }

    #[test]
    fn capture_is_deterministic_and_collapsed_renders() {
        let t = tiled_tracer();
        let a = SampledProfile::capture(&t, 0.01);
        let b = SampledProfile::capture(&t, 0.01);
        assert_eq!(a, b);
        assert_eq!(a.collapsed(), b.collapsed());
        assert!(a.collapsed().contains("run;hot "));
        assert!(a.render_top(3).contains("hot"));
    }

    #[test]
    fn trace_shorter_than_one_interval_yields_empty_profile_without_nan() {
        // Interval longer than the whole trace: the midpoint probe never
        // lands inside a span, so the profile is empty — and the share
        // math must not divide by the zero sample count.
        let t = tiled_tracer(); // extent 10 s
        let p = SampledProfile::capture(&t, 100.0);
        assert_eq!(p.total_samples(), 0);
        assert!(p.leaf_shares().is_empty());
        assert_eq!(p.leaf_share("hot"), 0.0);
        assert!(p.leaf_share("hot").is_finite());
        assert!(p.render_top(3).contains("0 samples"));

        // capture_n on a zero-extent trace (a lone zero-duration span)
        // takes the empty-profile path rather than a 0-second interval.
        let mut z = Tracer::new();
        z.begin("run");
        z.closed_span("instantaneous", 0.0, 0.0);
        z.end();
        let p = SampledProfile::capture_n(&z, 1000);
        assert_eq!(p.total_samples(), 0);
        assert!(p.leaf_shares().is_empty());
        assert!(p.leaf_share("instantaneous").is_finite());
    }

    #[test]
    fn capture_n_hits_target_and_empty_trace_is_empty() {
        let p = SampledProfile::capture_n(&tiled_tracer(), 1000);
        assert!(
            (900..=1100).contains(&p.total_samples()),
            "{}",
            p.total_samples()
        );
        let empty = SampledProfile::capture_n(&Tracer::new(), 1000);
        assert_eq!(empty.total_samples(), 0);
        assert!(empty.leaf_shares().is_empty());
    }
}
