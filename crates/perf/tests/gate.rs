//! Acceptance gates for the profiler layer:
//!
//! * the Table IV-style symbol blocks reproduce exactly the ranking of
//!   `PerfReport::top_by_cycles`;
//! * the sampled profile agrees with exact cycle attribution within the
//!   documented tolerance;
//! * `perf-diff` passes on an unchanged profile and fails — naming the
//!   offending symbol — on an injected ≥ 10 % cycle-share regression;
//! * a real baseline survives a JSON round trip losslessly.

use afsb_core::context::{BenchContext, ContextConfig};
use afsb_core::msa_phase::{run_msa_phase, MsaPhaseOptions};
use afsb_perf::baseline::{diff, DiffTolerances, PerfBaseline};
use afsb_perf::profile::{profile_pipeline, ProfileArtifacts};
use afsb_perf::record::SampledProfile;
use afsb_perf::stat::symbol_rows;
use afsb_rt::obs::Tracer;
use afsb_rt::{FromJson, Json, ToJson};
use afsb_seq::samples::SampleId;
use afsb_simarch::{Platform, SimResult};
use std::sync::OnceLock;

/// One shared quick pipeline profile — the expensive part of this suite.
fn pipeline_profile() -> &'static ProfileArtifacts {
    static PROFILE: OnceLock<ProfileArtifacts> = OnceLock::new();
    PROFILE.get_or_init(|| profile_pipeline(true))
}

fn quick_msa_sim() -> SimResult {
    let mut ctx = BenchContext::new(ContextConfig::test());
    let data = ctx.sample_data(SampleId::S2pv7);
    run_msa_phase(
        &data,
        Platform::Server,
        4,
        &MsaPhaseOptions {
            sample_cap: 200_000,
            ..MsaPhaseOptions::default()
        },
    )
    .sim
}

#[test]
fn stat_tables_reproduce_top_by_cycles_ranking() {
    let sim = quick_msa_sim();
    let expected: Vec<&str> = sim
        .report
        .top_by_cycles()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    let got: Vec<String> = symbol_rows(&sim.report)
        .into_iter()
        .map(|r| r.symbol)
        .collect();
    assert_eq!(got, expected, "profiler must never reorder perf's ranking");

    // The committed baseline's tables obey the same invariant: cycles
    // descending, symbol name as tiebreak.
    let baseline = &pipeline_profile().baseline;
    for table in &baseline.symbol_tables {
        for pair in table.rows.windows(2) {
            assert!(
                pair[0].cycles > pair[1].cycles
                    || (pair[0].cycles == pair[1].cycles && pair[0].symbol < pair[1].symbol),
                "table `{}` out of order at `{}`/`{}`",
                table.name,
                pair[0].symbol,
                pair[1].symbol
            );
        }
    }
}

#[test]
fn sampled_profile_matches_exact_attribution_within_tolerance() {
    // Tile a span with the MSA phase's exact per-symbol cycle shares,
    // then sample it: the sampled leaf shares must agree with the exact
    // attribution within the tolerance documented in `record` (2 pp).
    let sim = quick_msa_sim();
    let mut t = Tracer::new();
    t.begin("msa_phase");
    let phase = t.closed_span("cpu", 0.0, 100.0);
    sim.trace_symbols_under(&mut t, phase, 0.0, 100.0);
    t.advance(100.0);
    t.end();

    let profile = SampledProfile::capture_n(&t, 4000);
    for (name, _) in sim.report.top_by_cycles().into_iter().take(4) {
        let exact = sim.report.cycles_share(name);
        let sampled = profile.leaf_share(name);
        assert!(
            (sampled - exact).abs() < 0.02,
            "symbol {name}: sampled {sampled:.4} vs exact {exact:.4}"
        );
    }
}

#[test]
fn perf_diff_passes_unchanged_and_fails_on_injected_regression() {
    let baseline = &pipeline_profile().baseline;
    let tol = DiffTolerances::default();

    let clean = diff(baseline, baseline, &tol);
    assert!(clean.passed(), "self-diff must pass:\n{}", clean.render());

    // Inject a 12 % relative cycle-share regression into the hottest
    // MSA symbol (shares stay un-renormalized: exactly what a hotter
    // symbol under a fixed total looks like).
    let mut hot = baseline.clone();
    let table = hot
        .symbol_tables
        .iter_mut()
        .find(|t| t.name == "msa")
        .expect("pipeline baseline has an msa table");
    let victim = table.rows[0].symbol.clone();
    table.rows[0].cycle_share *= 1.12;

    let bad = diff(baseline, &hot, &tol);
    assert!(!bad.passed(), "injected regression must fail the gate");
    let rendered = bad.render();
    assert!(
        rendered.contains(&format!("msa/{victim}")),
        "offending symbol `{victim}` must be named:\n{rendered}"
    );
}

#[test]
fn perf_diff_fails_on_current_only_wall_metric_and_table() {
    let baseline = &pipeline_profile().baseline;
    let tol = DiffTolerances::default();

    // A wall.* metric that exists only in the current profile used to
    // sail through the gate (the diff iterated baseline.metrics only).
    let mut renamed = baseline.clone();
    renamed.metrics.push(("wall.phantom_s".into(), 123.0));
    let d = diff(baseline, &renamed, &tol);
    assert!(!d.passed(), "current-only wall.* metric must fail the gate");
    assert!(
        d.render().contains("wall.phantom_s"),
        "offending metric must be named:\n{}",
        d.render()
    );

    // Same blind spot for whole symbol tables.
    let mut extra_table = baseline.clone();
    extra_table
        .symbol_tables
        .push(afsb_perf::baseline::SymbolTable {
            name: "phantom".into(),
            rows: baseline.symbol_tables[0].rows.clone(),
        });
    let d = diff(baseline, &extra_table, &tol);
    assert!(!d.passed(), "current-only symbol table must fail the gate");
    assert!(d.render().contains("phantom"), "{}", d.render());
}

#[test]
fn real_baseline_round_trips_through_json() {
    let baseline = &pipeline_profile().baseline;
    let text = baseline.to_json().pretty();
    assert_eq!(text, baseline.to_json().pretty(), "serialization is stable");
    let parsed = PerfBaseline::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(&parsed, baseline);
    assert!(!pipeline_profile().collapsed.is_empty());
    assert!(pipeline_profile().report_text.contains("Table III"));
}
