//! Tensor shapes and row-major strides.

use std::fmt;

/// A tensor shape (row-major, rank ≤ 4 in practice).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the shape is empty.
    pub fn new(dims: Vec<usize>) -> Shape {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        Shape { dims }
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat index of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the index rank mismatches or is out of range.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for d in (0..self.dims.len()).rev() {
            debug_assert!(index[d] < self.dims[d], "index out of range in dim {d}");
            off += index[d] * stride;
            stride *= self.dims[d];
        }
        off
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Shape {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offsets_walk_linearly() {
        let s = Shape::new(vec![2, 3]);
        let mut expected = 0;
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(s.offset(&[i, j]), expected);
                expected += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new(vec![2, 0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![4, 5]).to_string(), "[4x5]");
    }
}
