//! FLOP/byte cost accounting for model layers.
//!
//! Layers record a [`KernelCost`] per logical GPU kernel they would launch
//! at *paper-scale* tensor dimensions. The `afsb-gpu` roofline model turns
//! each record into device time; Table VI and Fig. 9 are aggregations of
//! these records by layer label.

use std::collections::BTreeMap;
use std::fmt;

/// The cost of one logical kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCost {
    /// Layer label (e.g. `pairformer/triangle_attention`).
    pub label: String,
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Number of kernel launches this record stands for.
    pub launches: u64,
}

/// An append-only log of kernel costs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostLog {
    entries: Vec<KernelCost>,
}

impl CostLog {
    /// Create an empty log.
    pub fn new() -> CostLog {
        CostLog::default()
    }

    /// Record one kernel.
    ///
    /// # Panics
    ///
    /// Panics if `flops` or `bytes` is negative or `launches == 0`.
    pub fn record(&mut self, label: impl Into<String>, flops: f64, bytes: f64, launches: u64) {
        assert!(flops >= 0.0 && bytes >= 0.0, "costs must be non-negative");
        assert!(launches > 0, "at least one launch");
        self.entries.push(KernelCost {
            label: label.into(),
            flops,
            bytes,
            launches,
        });
    }

    /// All entries in record order.
    pub fn entries(&self) -> &[KernelCost] {
        &self.entries
    }

    /// Total FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.entries.iter().map(|e| e.flops).sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> f64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Total launches.
    pub fn total_launches(&self) -> u64 {
        self.entries.iter().map(|e| e.launches).sum()
    }

    /// Aggregate (flops, bytes, launches) by label.
    pub fn by_label(&self) -> BTreeMap<String, (f64, f64, u64)> {
        let mut map: BTreeMap<String, (f64, f64, u64)> = BTreeMap::new();
        for e in &self.entries {
            let slot = map.entry(e.label.clone()).or_insert((0.0, 0.0, 0));
            slot.0 += e.flops;
            slot.1 += e.bytes;
            slot.2 += e.launches;
        }
        map
    }

    /// Merge another log's entries into this one.
    pub fn extend(&mut self, other: &CostLog) {
        self.entries.extend(other.entries.iter().cloned());
    }

    /// Publish per-label launch counters and FLOP/byte gauges under
    /// `<prefix>.<label>.*` plus log-level totals (Table VI / Fig. 9 as
    /// metrics instead of a rendered table).
    pub fn publish_metrics(&self, metrics: &mut afsb_rt::MetricsRegistry, prefix: &str) {
        for (label, (flops, bytes, launches)) in self.by_label() {
            metrics.inc(&format!("{prefix}.{label}.launches"), launches);
            metrics.set_gauge(&format!("{prefix}.{label}.flops"), flops);
            metrics.set_gauge(&format!("{prefix}.{label}.bytes"), bytes);
        }
        metrics.inc(&format!("{prefix}.launches"), self.total_launches());
        metrics.set_gauge(&format!("{prefix}.flops"), self.total_flops());
        metrics.set_gauge(&format!("{prefix}.bytes"), self.total_bytes());
    }
}

impl fmt::Display for CostLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<44} {:>12} {:>12} {:>8}",
            "Kernel", "GFLOP", "GiB", "Launches"
        )?;
        for (label, (flops, bytes, launches)) in self.by_label() {
            writeln!(
                f,
                "{:<44} {:>12.3} {:>12.3} {:>8}",
                label,
                flops / 1e9,
                bytes / (1u64 << 30) as f64,
                launches
            )?;
        }
        Ok(())
    }
}

/// FLOPs of a dense `[m,k] @ [k,n]` matmul.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

/// Bytes touched by a dense matmul with `f32`/`bf16`-ish 2-byte activations
/// read once and written once (a roofline lower bound).
pub fn matmul_bytes(m: usize, k: usize, n: usize) -> f64 {
    2.0 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut log = CostLog::new();
        log.record("a", 100.0, 10.0, 1);
        log.record("b", 200.0, 20.0, 2);
        log.record("a", 50.0, 5.0, 1);
        assert_eq!(log.total_flops(), 350.0);
        assert_eq!(log.total_bytes(), 35.0);
        assert_eq!(log.total_launches(), 4);
    }

    #[test]
    fn by_label_groups() {
        let mut log = CostLog::new();
        log.record("x", 1.0, 1.0, 1);
        log.record("x", 2.0, 2.0, 3);
        let groups = log.by_label();
        assert_eq!(groups["x"], (3.0, 3.0, 4));
    }

    #[test]
    fn matmul_cost_formulas() {
        assert_eq!(matmul_flops(2, 3, 4), 48.0);
        assert_eq!(matmul_bytes(2, 3, 4), 2.0 * (6.0 + 12.0 + 8.0));
    }

    #[test]
    fn extend_merges() {
        let mut a = CostLog::new();
        a.record("x", 1.0, 1.0, 1);
        let mut b = CostLog::new();
        b.record("y", 2.0, 2.0, 1);
        a.extend(&b);
        assert_eq!(a.entries().len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        CostLog::new().record("bad", -1.0, 0.0, 1);
    }

    #[test]
    fn publish_metrics_exports_labels_and_totals() {
        let mut log = CostLog::new();
        log.record("pair_transition", 100.0, 10.0, 2);
        log.record("pair_transition", 50.0, 5.0, 1);
        log.record("diffusion/global_attention", 30.0, 3.0, 4);
        let mut m = afsb_rt::MetricsRegistry::new();
        log.publish_metrics(&mut m, "kernels");
        assert_eq!(m.counter("kernels.pair_transition.launches"), 3);
        assert_eq!(m.counter("kernels.launches"), 7);
        assert_eq!(m.gauge("kernels.pair_transition.flops"), Some(150.0));
        assert_eq!(m.gauge("kernels.bytes"), Some(18.0));
    }
}
