//! Minimal dense `f32` tensor library for the AF3 model substrate.
//!
//! AlphaFold3's inference modules (Pairformer, Diffusion) are built from a
//! small set of primitives — linear projections, layer norm, softmax
//! attention, element-wise gating — over rank-2/3/4 tensors. This crate
//! implements exactly those, CPU-only and dependency-free, plus a
//! [`cost::CostLog`] that records the FLOPs and bytes each layer would
//! execute at *paper scale*; the GPU roofline model in `afsb-gpu` prices
//! those records on an H100 or RTX 4080.
//!
//! # Example
//!
//! ```
//! use afsb_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::eye(3);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod attention;
pub mod cost;
pub mod nn;
pub mod shape;
pub mod tensor;

pub use cost::{CostLog, KernelCost};
pub use shape::Shape;
pub use tensor::Tensor;
