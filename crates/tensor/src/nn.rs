//! Neural-network primitives: linear layers, layer norm, softmax,
//! activations.

use crate::tensor::Tensor;

/// A dense linear layer `y = x W + b` applied over the last dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Seeded random-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Linear {
        Linear {
            weight: Tensor::randn(vec![in_dim, out_dim], seed),
            bias: Some(Tensor::zeros(vec![out_dim])),
            in_dim,
            out_dim,
        }
    }

    /// Layer without a bias term (AF3 uses bias-free projections widely).
    pub fn new_no_bias(in_dim: usize, out_dim: usize, seed: u64) -> Linear {
        Linear {
            bias: None,
            ..Linear::new(in_dim, out_dim, seed)
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter count.
    pub fn params(&self) -> usize {
        self.in_dim * self.out_dim + if self.bias.is_some() { self.out_dim } else { 0 }
    }

    /// Apply over the last dimension of an arbitrary-rank input: the input
    /// is treated as `[rows, in_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if the last dimension differs from `in_dim`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let dims = x.dims();
        let last = *dims.last().expect("non-empty shape");
        assert_eq!(last, self.in_dim, "input feature dim mismatch");
        let rows = x.shape().numel() / last;
        let flat = x.clone().reshape(vec![rows, last]);
        let mut y = flat.matmul(&self.weight);
        if let Some(bias) = &self.bias {
            let b = bias.data();
            for row in y.data_mut().chunks_mut(self.out_dim) {
                for (v, &bv) in row.iter_mut().zip(b) {
                    *v += bv;
                }
            }
        }
        let mut out_dims = dims.to_vec();
        *out_dims.last_mut().expect("non-empty") = self.out_dim;
        y.reshape(out_dims)
    }
}

/// Layer normalization over the last dimension (learned scale/offset
/// omitted: identity affine, as initialization would make them).
pub fn layer_norm(x: &Tensor) -> Tensor {
    let last = *x.dims().last().expect("non-empty shape");
    let mut out = x.clone();
    for row in out.data_mut().chunks_mut(last) {
        let n = row.len() as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mean) * inv;
        }
    }
    out
}

/// Numerically-stable softmax over the last dimension.
pub fn softmax(x: &Tensor) -> Tensor {
    let last = *x.dims().last().expect("non-empty shape");
    let mut out = x.clone();
    for row in out.data_mut().chunks_mut(last) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// SwiGLU-ish swish activation `x * sigmoid(x)`.
pub fn swish(x: &Tensor) -> Tensor {
    x.map(|v| v / (1.0 + (-v).exp()))
}

/// ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// A two-layer transition block (`Linear → swish → Linear`), the MLP used
/// throughout Pairformer.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    up: Linear,
    down: Linear,
}

impl Transition {
    /// Build with an expansion factor (AF3 uses 4x).
    pub fn new(dim: usize, expansion: usize, seed: u64) -> Transition {
        Transition {
            up: Linear::new_no_bias(dim, dim * expansion, seed),
            down: Linear::new_no_bias(dim * expansion, dim, seed ^ 0xdead),
        }
    }

    /// Apply the transition.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.down.forward(&swish(&self.up.forward(x)))
    }

    /// Parameter count.
    pub fn params(&self) -> usize {
        self.up.params() + self.down.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_bias() {
        let l = Linear::new(4, 6, 1);
        let x = Tensor::randn(vec![3, 5, 4], 2);
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[3, 5, 6]);
        assert_eq!(l.params(), 4 * 6 + 6);
        assert_eq!(Linear::new_no_bias(4, 6, 1).params(), 24);
    }

    #[test]
    fn linear_is_linear() {
        let l = Linear::new_no_bias(8, 8, 3);
        let a = Tensor::randn(vec![2, 8], 4);
        let b = Tensor::randn(vec![2, 8], 5);
        let sum_then = l.forward(&a.add(&b));
        let then_sum = l.forward(&a).add(&l.forward(&b));
        assert!(sum_then.approx_eq(&then_sum, 1e-4));
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Tensor::randn(vec![5, 32], 6);
        let y = layer_norm(&x);
        for row in y.data().chunks(32) {
            let mean: f32 = row.iter().sum::<f32>() / 32.0;
            let var: f32 = row.iter().map(|v| v * v).sum::<f32>() / 32.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -5., 0., 5.]);
        let y = softmax(&x);
        for row in y.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1, 2], vec![1e4, 1e4 - 1.0]);
        let y = softmax(&x);
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!((y.data()[0] + y.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activations_basic_properties() {
        let x = Tensor::from_vec(vec![3], vec![-2.0, 0.0, 2.0]);
        let s = sigmoid(&x);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[0] < s.data()[1] && s.data()[1] < s.data()[2]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        let w = swish(&x);
        assert!(w.data()[2] > 0.0 && w.data()[0] > -0.5);
    }

    #[test]
    fn transition_preserves_shape() {
        let t = Transition::new(16, 4, 7);
        let x = Tensor::randn(vec![3, 16], 8);
        let y = t.forward(&x);
        assert_eq!(y.dims(), &[3, 16]);
        assert_eq!(t.params(), 16 * 64 * 2);
    }
}
