//! The dense `f32` tensor type and core operations.

use crate::shape::Shape;
use afsb_rt::Rng;
use std::fmt;

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(dims: Vec<usize>) -> Tensor {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Tensor filled with one value.
    pub fn full(dims: Vec<usize>, value: f32) -> Tensor {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Build from explicit data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` mismatches the shape.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), data.len(), "data length mismatches shape");
        Tensor { shape, data }
    }

    /// Seeded He-style random init (scaled by `1/sqrt(fan_in)` where
    /// `fan_in` is the last dimension).
    pub fn randn(dims: Vec<usize>, seed: u64) -> Tensor {
        let shape = Shape::new(dims);
        let fan_in = *shape.dims().last().expect("non-empty shape") as f32;
        let scale = (1.0 / fan_in).sqrt();
        let mut rng = Rng::seed_from_u64(seed);
        // Box-Muller pairs.
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * scale);
            if data.len() < n {
                data.push(r * theta.sin() * scale);
            }
        }
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimensions shortcut.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a multi-index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Set an element.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, dims: Vec<usize>) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape must preserve numel"
        );
        self.shape = shape;
        self
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combine with an equal-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip requires equal shapes");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scale by a constant.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// 2-D matrix multiply: `[m,k] @ [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner
    /// dimension.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "inner dimensions must match");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics unless rank-2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 needs rank 2");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0 for empty — unreachable).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Approximate equality within `tol` (same shape required).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ({} elems)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let i = Tensor::eye(3);
        assert!(a.matmul(&i).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(vec![2, 2], vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_associative_with_transpose_rule() {
        let a = Tensor::randn(vec![3, 4], 1);
        let b = Tensor::randn(vec![4, 5], 2);
        let ab_t = a.matmul(&b).transpose2();
        let bt_at = b.transpose2().matmul(&a.transpose2());
        assert!(ab_t.approx_eq(&bt_at, 1e-4));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::randn(vec![3, 7], 3);
        assert!(a.transpose2().transpose2().approx_eq(&a, 0.0));
    }

    #[test]
    fn randn_scaled_and_deterministic() {
        let a = Tensor::randn(vec![64, 64], 9);
        let b = Tensor::randn(vec![64, 64], 9);
        assert_eq!(a, b);
        // He-ish scale: std ~ 1/8 for fan_in 64.
        let var = a.data().iter().map(|x| x * x).sum::<f32>() / 4096.0;
        assert!((var.sqrt() - 0.125).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![2], vec![1., -2.]);
        let b = Tensor::from_vec(vec![2], vec![3., 5.]);
        assert_eq!(a.add(&b).data(), &[4., 3.]);
        assert_eq!(a.hadamard(&b).data(), &[3., -10.]);
        assert_eq!(a.scale(2.0).data(), &[2., -4.]);
        assert_eq!(a.map(f32::abs).data(), &[1., 2.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.clone().reshape(vec![3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions must match")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(vec![2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }
}
