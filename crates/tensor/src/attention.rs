//! Multi-head scaled-dot-product attention with optional logit bias.
//!
//! The bias path is load-bearing for AF3: triangle attention biases the
//! logits with the pair representation's "third edge", and Pairformer's
//! single-representation attention is pair-biased too.

use crate::nn::{softmax, Linear};
use crate::tensor::Tensor;

/// Multi-head attention over `[rows, dim]` inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    o: Linear,
    heads: usize,
    dim: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Build an attention block.
    ///
    /// # Panics
    ///
    /// Panics unless `dim` is divisible by `heads`.
    pub fn new(dim: usize, heads: usize, seed: u64) -> MultiHeadAttention {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must divide by heads"
        );
        MultiHeadAttention {
            q: Linear::new_no_bias(dim, dim, seed),
            k: Linear::new_no_bias(dim, dim, seed ^ 0x1111),
            v: Linear::new_no_bias(dim, dim, seed ^ 0x2222),
            o: Linear::new_no_bias(dim, dim, seed ^ 0x3333),
            heads,
            dim,
            head_dim: dim / heads,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Parameter count.
    pub fn params(&self) -> usize {
        self.q.params() + self.k.params() + self.v.params() + self.o.params()
    }

    /// Attend `queries [n, dim]` over `keys/values [m, dim]`.
    ///
    /// `bias`, when given, must be `[heads, n, m]` and is added to the
    /// pre-softmax logits.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn forward(&self, queries: &Tensor, keys_values: &Tensor, bias: Option<&Tensor>) -> Tensor {
        assert_eq!(queries.shape().rank(), 2, "queries must be [n, dim]");
        assert_eq!(
            keys_values.shape().rank(),
            2,
            "keys/values must be [m, dim]"
        );
        let n = queries.dims()[0];
        let m = keys_values.dims()[0];
        assert_eq!(queries.dims()[1], self.dim, "query dim mismatch");
        assert_eq!(keys_values.dims()[1], self.dim, "key dim mismatch");
        if let Some(b) = bias {
            assert_eq!(b.dims(), &[self.heads, n, m], "bias must be [heads, n, m]");
        }

        let q = self.q.forward(queries);
        let k = self.k.forward(keys_values);
        let v = self.v.forward(keys_values);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut merged = Tensor::zeros(vec![n, self.dim]);
        for h in 0..self.heads {
            let h_off = h * self.head_dim;
            // Logits [n, m] for this head.
            let mut logits = Tensor::zeros(vec![n, m]);
            for i in 0..n {
                for j in 0..m {
                    let mut dot = 0.0;
                    for d in 0..self.head_dim {
                        dot +=
                            q.data()[i * self.dim + h_off + d] * k.data()[j * self.dim + h_off + d];
                    }
                    let mut logit = dot * scale;
                    if let Some(b) = bias {
                        logit += b.data()[(h * n + i) * m + j];
                    }
                    logits.data_mut()[i * m + j] = logit;
                }
            }
            let weights = softmax(&logits);
            for i in 0..n {
                for j in 0..m {
                    let w = weights.data()[i * m + j];
                    if w == 0.0 {
                        continue;
                    }
                    for d in 0..self.head_dim {
                        merged.data_mut()[i * self.dim + h_off + d] +=
                            w * v.data()[j * self.dim + h_off + d];
                    }
                }
            }
        }
        self.o.forward(&merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_matches_queries() {
        let attn = MultiHeadAttention::new(16, 4, 1);
        let q = Tensor::randn(vec![5, 16], 2);
        let kv = Tensor::randn(vec![9, 16], 3);
        let y = attn.forward(&q, &kv, None);
        assert_eq!(y.dims(), &[5, 16]);
    }

    #[test]
    fn self_attention_is_permutation_equivariant_without_bias() {
        // Swapping two key/value rows must not change outputs (softmax sums
        // are order-free).
        let attn = MultiHeadAttention::new(8, 2, 4);
        let q = Tensor::randn(vec![3, 8], 5);
        let kv = Tensor::randn(vec![4, 8], 6);
        let y1 = attn.forward(&q, &kv, None);
        // Permute kv rows 0 and 2.
        let mut data = kv.data().to_vec();
        for d in 0..8 {
            data.swap(d, 2 * 8 + d);
        }
        let kv_p = Tensor::from_vec(vec![4, 8], data);
        let y2 = attn.forward(&q, &kv_p, None);
        assert!(y1.approx_eq(&y2, 1e-4));
    }

    #[test]
    fn strong_bias_steers_attention() {
        let attn = MultiHeadAttention::new(8, 1, 7);
        let q = Tensor::randn(vec![1, 8], 8);
        let kv = Tensor::randn(vec![3, 8], 9);
        // Bias hugely toward key 2.
        let mut bias = Tensor::full(vec![1, 1, 3], -30.0);
        bias.set(&[0, 0, 2], 30.0);
        let y = attn.forward(&q, &kv, Some(&bias));
        // Compare against attending only to row 2.
        let kv_row2 = Tensor::from_vec(vec![1, 8], kv.data()[16..24].to_vec());
        let y_only = attn.forward(&q, &kv_row2, None);
        assert!(y.approx_eq(&y_only, 1e-3));
    }

    #[test]
    fn deterministic() {
        let attn = MultiHeadAttention::new(8, 2, 10);
        let q = Tensor::randn(vec![2, 8], 11);
        let kv = Tensor::randn(vec![2, 8], 12);
        assert_eq!(attn.forward(&q, &kv, None), attn.forward(&q, &kv, None));
    }

    #[test]
    #[should_panic(expected = "bias must be")]
    fn bias_shape_checked() {
        let attn = MultiHeadAttention::new(8, 2, 13);
        let q = Tensor::randn(vec![2, 8], 14);
        let kv = Tensor::randn(vec![3, 8], 15);
        let bias = Tensor::zeros(vec![2, 2, 2]);
        let _ = attn.forward(&q, &kv, Some(&bias));
    }
}
