//! Property-based tests for tensor-library invariants.

use afsb_tensor::nn::{layer_norm, softmax, Linear};
use afsb_tensor::Tensor;
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_left_and_right((m, k, _) in small_dims(), seed in 0u64..1000) {
        let a = Tensor::randn(vec![m, k], seed);
        prop_assert!(a.matmul(&Tensor::eye(k)).approx_eq(&a, 1e-5));
        prop_assert!(Tensor::eye(m).matmul(&a).approx_eq(&a, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition((m, k, n) in small_dims(), seed in 0u64..1000) {
        let a = Tensor::randn(vec![m, k], seed);
        let b = Tensor::randn(vec![k, n], seed ^ 1);
        let c = Tensor::randn(vec![k, n], seed ^ 2);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn transpose_reverses_matmul((m, k, n) in small_dims(), seed in 0u64..1000) {
        let a = Tensor::randn(vec![m, k], seed);
        let b = Tensor::randn(vec![k, n], seed ^ 3);
        let ab_t = a.matmul(&b).transpose2();
        let bt_at = b.transpose2().matmul(&a.transpose2());
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..6, cols in 1usize..12, seed in 0u64..1000) {
        let x = Tensor::randn(vec![rows, cols], seed).scale(5.0);
        let y = softmax(&x);
        for row in y.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sums to {}", sum);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_invariant_to_shift(cols in 2usize..12, seed in 0u64..1000, shift in -50.0f32..50.0) {
        let x = Tensor::randn(vec![1, cols], seed);
        let shifted = x.map(|v| v + shift);
        prop_assert!(softmax(&x).approx_eq(&softmax(&shifted), 1e-4));
    }

    #[test]
    fn layer_norm_normalizes(rows in 1usize..6, cols in 4usize..32, seed in 0u64..1000) {
        let x = Tensor::randn(vec![rows, cols], seed).scale(7.0).map(|v| v + 3.0);
        let y = layer_norm(&x);
        for row in y.data().chunks(cols) {
            let n = cols as f32;
            let mean: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            prop_assert!(mean.abs() < 1e-3);
            prop_assert!((var - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn linear_homogeneous(in_dim in 2usize..12, out_dim in 2usize..12, seed in 0u64..1000, s in -3.0f32..3.0) {
        let l = Linear::new_no_bias(in_dim, out_dim, seed);
        let x = Tensor::randn(vec![3, in_dim], seed ^ 9);
        let scaled_then = l.forward(&x.scale(s));
        let then_scaled = l.forward(&x).scale(s);
        prop_assert!(scaled_then.approx_eq(&then_scaled, 1e-3));
    }

    #[test]
    fn reshape_preserves_sum((m, k, _) in small_dims(), seed in 0u64..1000) {
        let a = Tensor::randn(vec![m, k], seed);
        let sum_before = a.sum();
        let b = a.reshape(vec![k * m]);
        prop_assert!((b.sum() - sum_before).abs() < 1e-4);
    }
}
