//! Property-based tests for tensor-library invariants.

use afsb_rt::check::{run, Config, Gen};
use afsb_tensor::nn::{layer_norm, softmax, Linear};
use afsb_tensor::Tensor;

fn small_dims(g: &mut Gen) -> (usize, usize, usize) {
    (g.range(1usize..8), g.range(1usize..8), g.range(1usize..8))
}

#[test]
fn matmul_identity_left_and_right() {
    run("matmul_identity_left_and_right", Config::cases(64), |g| {
        let (m, k, _) = small_dims(g);
        let seed = g.range(0u64..1000);
        let a = Tensor::randn(vec![m, k], seed);
        assert!(a.matmul(&Tensor::eye(k)).approx_eq(&a, 1e-5));
        assert!(Tensor::eye(m).matmul(&a).approx_eq(&a, 1e-5));
    });
}

#[test]
fn matmul_distributes_over_addition() {
    run("matmul_distributes_over_addition", Config::cases(64), |g| {
        let (m, k, n) = small_dims(g);
        let seed = g.range(0u64..1000);
        let a = Tensor::randn(vec![m, k], seed);
        let b = Tensor::randn(vec![k, n], seed ^ 1);
        let c = Tensor::randn(vec![k, n], seed ^ 2);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert!(lhs.approx_eq(&rhs, 1e-3));
    });
}

#[test]
fn transpose_reverses_matmul() {
    run("transpose_reverses_matmul", Config::cases(64), |g| {
        let (m, k, n) = small_dims(g);
        let seed = g.range(0u64..1000);
        let a = Tensor::randn(vec![m, k], seed);
        let b = Tensor::randn(vec![k, n], seed ^ 3);
        let ab_t = a.matmul(&b).transpose2();
        let bt_at = b.transpose2().matmul(&a.transpose2());
        assert!(ab_t.approx_eq(&bt_at, 1e-3));
    });
}

#[test]
fn softmax_rows_are_distributions() {
    run("softmax_rows_are_distributions", Config::cases(64), |g| {
        let rows = g.range(1usize..6);
        let cols = g.range(1usize..12);
        let seed = g.range(0u64..1000);
        let x = Tensor::randn(vec![rows, cols], seed).scale(5.0);
        let y = softmax(&x);
        for row in y.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row sums to {sum}");
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    });
}

#[test]
fn softmax_invariant_to_shift() {
    run("softmax_invariant_to_shift", Config::cases(64), |g| {
        let cols = g.range(2usize..12);
        let seed = g.range(0u64..1000);
        let shift = g.range(-50.0f32..50.0);
        let x = Tensor::randn(vec![1, cols], seed);
        let shifted = x.map(|v| v + shift);
        assert!(softmax(&x).approx_eq(&softmax(&shifted), 1e-4));
    });
}

#[test]
fn layer_norm_normalizes() {
    run("layer_norm_normalizes", Config::cases(64), |g| {
        let rows = g.range(1usize..6);
        let cols = g.range(4usize..32);
        let seed = g.range(0u64..1000);
        let x = Tensor::randn(vec![rows, cols], seed)
            .scale(7.0)
            .map(|v| v + 3.0);
        let y = layer_norm(&x);
        for row in y.data().chunks(cols) {
            let n = cols as f32;
            let mean: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            assert!(mean.abs() < 1e-3);
            assert!((var - 1.0).abs() < 0.05);
        }
    });
}

#[test]
fn linear_homogeneous() {
    run("linear_homogeneous", Config::cases(64), |g| {
        let in_dim = g.range(2usize..12);
        let out_dim = g.range(2usize..12);
        let seed = g.range(0u64..1000);
        let s = g.range(-3.0f32..3.0);
        let l = Linear::new_no_bias(in_dim, out_dim, seed);
        let x = Tensor::randn(vec![3, in_dim], seed ^ 9);
        let scaled_then = l.forward(&x.scale(s));
        let then_scaled = l.forward(&x).scale(s);
        assert!(scaled_then.approx_eq(&then_scaled, 1e-3));
    });
}

#[test]
fn reshape_preserves_sum() {
    run("reshape_preserves_sum", Config::cases(64), |g| {
        let (m, k, _) = small_dims(g);
        let seed = g.range(0u64..1000);
        let a = Tensor::randn(vec![m, k], seed);
        let sum_before = a.sum();
        let b = a.reshape(vec![k * m]);
        assert!((b.sum() - sum_before).abs() < 1e-4);
    });
}
