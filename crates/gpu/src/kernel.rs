//! Roofline pricing of kernel cost logs.

use crate::device::GpuSpec;
use afsb_tensor::cost::{CostLog, KernelCost};
use std::collections::BTreeMap;

/// Priced execution time of one kernel record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Compute-limited seconds.
    pub compute_s: f64,
    /// Bandwidth-limited seconds.
    pub memory_s: f64,
    /// Launch overhead seconds.
    pub launch_s: f64,
}

impl KernelTime {
    /// Total roofline time: the binding resource plus launch overhead.
    pub fn total(&self) -> f64 {
        self.compute_s.max(self.memory_s) + self.launch_s
    }

    /// Whether the kernel is memory-bound.
    pub fn memory_bound(&self) -> bool {
        self.memory_s > self.compute_s
    }
}

/// Price a single kernel record on a device.
///
/// `uvm_fraction` is the fraction of the kernel's bytes served through the
/// unified-memory path (0 for fully-resident working sets).
pub fn price_kernel(cost: &KernelCost, device: &GpuSpec, uvm_fraction: f64) -> KernelTime {
    let compute_s = cost.flops / device.effective_flops();
    let bw = device.effective_bandwidth();
    let resident = cost.bytes * (1.0 - uvm_fraction);
    let spilled = cost.bytes * uvm_fraction;
    // Spilled bytes migrate over the host interconnect; `uvm_penalty`
    // divides its bandwidth (fault handling + duplicate transfers).
    let uvm_bps = device.pcie_gibs * (1u64 << 30) as f64 / device.uvm_penalty;
    let memory_s = resident / bw + spilled / uvm_bps;
    let launch_s = cost.launches as f64 * device.launch_overhead_us * 1e-6;
    KernelTime {
        compute_s,
        memory_s,
        launch_s,
    }
}

/// Nsight-style utilization summary of a priced cost log: how close the
/// run came to the device roofline and where the time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RooflineStats {
    /// Achieved FLOP throughput over the device's effective peak
    /// (`total_flops / total_seconds / effective_flops`). Below 1 when
    /// memory-bound phases or launch overhead starve the SMs.
    pub attainment: f64,
    /// Fraction of priced kernel time spent in memory-bound kernels.
    pub memory_bound_fraction: f64,
    /// Fraction of priced kernel time spent in launch overhead.
    pub launch_share: f64,
    /// SM-occupancy proxy: fraction of priced time the SMs are issuing
    /// compute (each kernel contributes `compute_s`, capped at its own
    /// roofline time).
    pub sm_occupancy: f64,
    /// Total priced kernel seconds.
    pub total_s: f64,
}

/// Summarize a cost log against a device roofline.
///
/// Returns all-zero stats for an empty log (no kernels, no utilization).
pub fn roofline_stats(log: &CostLog, device: &GpuSpec, uvm_fraction: f64) -> RooflineStats {
    let mut total_s = 0.0;
    let mut total_flops = 0.0;
    let mut memory_bound_s = 0.0;
    let mut launch_s = 0.0;
    let mut issue_s = 0.0;
    for entry in log.entries() {
        let t = price_kernel(entry, device, uvm_fraction);
        let kernel_total = t.total();
        total_s += kernel_total;
        total_flops += entry.flops;
        launch_s += t.launch_s;
        issue_s += t.compute_s.min(kernel_total);
        if t.memory_bound() {
            memory_bound_s += kernel_total;
        }
    }
    if total_s <= 0.0 {
        return RooflineStats::default();
    }
    RooflineStats {
        attainment: total_flops / total_s / device.effective_flops(),
        memory_bound_fraction: memory_bound_s / total_s,
        launch_share: launch_s / total_s,
        sm_occupancy: issue_s / total_s,
        total_s,
    }
}

/// Price a whole cost log; returns per-label seconds and the total.
pub fn price_log(
    log: &CostLog,
    device: &GpuSpec,
    uvm_fraction: f64,
) -> (BTreeMap<String, f64>, f64) {
    let mut per_label: BTreeMap<String, f64> = BTreeMap::new();
    let mut total = 0.0;
    for entry in log.entries() {
        let t = price_kernel(entry, device, uvm_fraction).total();
        *per_label.entry(entry.label.clone()).or_insert(0.0) += t;
        total += t;
    }
    (per_label, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(flops: f64, bytes: f64, launches: u64) -> KernelCost {
        KernelCost {
            label: "k".into(),
            flops,
            bytes,
            launches,
        }
    }

    #[test]
    fn compute_bound_kernel() {
        let d = GpuSpec::h100();
        // Huge flops, tiny bytes.
        let t = price_kernel(&cost(1e15, 1e6, 1), &d, 0.0);
        assert!(!t.memory_bound());
        assert!((t.total() - 1e15 / d.effective_flops() - 6e-6).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_kernel() {
        let d = GpuSpec::h100();
        let t = price_kernel(&cost(1e9, 1e12, 1), &d, 0.0);
        assert!(t.memory_bound());
    }

    #[test]
    fn uvm_spill_slows_kernel() {
        let d = GpuSpec::rtx4080();
        let resident = price_kernel(&cost(1e9, 1e11, 1), &d, 0.0);
        let spilled = price_kernel(&cost(1e9, 1e11, 1), &d, 0.5);
        assert!(spilled.total() > resident.total() * 3.0);
    }

    #[test]
    fn h100_faster_than_4080() {
        let c = cost(1e13, 1e10, 100);
        let th = price_kernel(&c, &GpuSpec::h100(), 0.0).total();
        let tr = price_kernel(&c, &GpuSpec::rtx4080(), 0.0).total();
        assert!(th < tr, "H100 {th} vs 4080 {tr}");
    }

    #[test]
    fn price_log_aggregates_by_label() {
        let mut log = CostLog::new();
        log.record("a", 1e12, 1e9, 10);
        log.record("b", 2e12, 1e9, 10);
        log.record("a", 1e12, 1e9, 10);
        let (per, total) = price_log(&log, &GpuSpec::h100(), 0.0);
        assert_eq!(per.len(), 2);
        assert!(per["b"] > 0.0 && per["a"] > per["b"] * 0.9);
        assert!((per.values().sum::<f64>() - total).abs() < 1e-12);
    }

    #[test]
    fn roofline_stats_bound_and_empty() {
        let d = GpuSpec::h100();
        let empty = roofline_stats(&CostLog::new(), &d, 0.0);
        assert_eq!(empty.attainment, 0.0);
        assert_eq!(empty.total_s, 0.0);

        let mut log = CostLog::new();
        log.record("gemm", 1e15, 1e6, 1); // compute-bound
        log.record("softmax", 1e9, 1e12, 1); // memory-bound
        let s = roofline_stats(&log, &d, 0.0);
        assert!(s.attainment > 0.0 && s.attainment <= 1.0 + 1e-9);
        assert!(s.memory_bound_fraction > 0.0 && s.memory_bound_fraction < 1.0);
        assert!(s.sm_occupancy > 0.0 && s.sm_occupancy <= 1.0 + 1e-9);
        assert!(s.launch_share < 0.01);
        // A compute-only log attains ~100% of the roofline (one launch of
        // overhead keeps it a hair below).
        let mut pure = CostLog::new();
        pure.record("gemm", 1e15, 1.0, 1);
        let p = roofline_stats(&pure, &d, 0.0);
        assert!(
            (p.attainment - 1.0).abs() < 1e-3,
            "attainment {}",
            p.attainment
        );
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let d = GpuSpec::h100();
        let t = price_kernel(&cost(1e3, 1e3, 10_000), &d, 0.0);
        assert!(t.launch_s > 0.9 * t.total());
    }
}
