//! GPU execution model: device rooflines, XLA-style compilation, runtime
//! lifecycle.
//!
//! The paper's inference-phase findings (Figs. 6 & 8, Table V) are about
//! the *system around* the GPU as much as the GPU itself: JAX/XLA
//! compilation and buffer allocation dominate short runs on the Server,
//! kernel dispatch is single-threaded (flat thread scaling), and the
//! RTX 4080 must spill 6QNR into unified memory. This crate models those
//! mechanisms:
//!
//! - [`device`]: H100 / RTX 4080 specs and achievable-throughput deratings,
//! - [`kernel`]: a roofline pricer for [`afsb_tensor::CostLog`] records,
//! - [`xla`]: graph build → fusion → buffer assignment (`ByteSizeOf`
//!   calls, arena growth, first-touch page faults) and a CPU-clock-scaled
//!   compile-time model,
//! - [`runtime`]: init (driver + weights upload), single-host-thread
//!   dispatch, unified-memory oversubscription, finalize, and the
//!   persistent-session optimization from §VI, and
//! - [`timeline`]: an Nsight-Systems-like span recorder behind Fig. 8.

pub mod device;
pub mod kernel;
pub mod runtime;
pub mod timeline;
pub mod xla;

pub use device::GpuSpec;
pub use kernel::price_log;
pub use runtime::{GpuInitFault, GpuRuntime, InferenceBreakdown};
pub use timeline::Timeline;
