//! GPU runtime lifecycle: init → compile → compute → finalize.
//!
//! Models the CPU-side phases around kernel execution that Fig. 8 breaks
//! down, including the Docker-era cold start the paper's §VI discusses,
//! plus the proposed persistent-session optimization.

use crate::device::GpuSpec;
use crate::kernel::price_log;
use crate::timeline::Timeline;
use crate::xla::{self, CompileCostModel, CompileReport, XlaGraph};
use afsb_rt::fault::{FaultInjector, FaultKind, FaultSite};
use afsb_tensor::cost::CostLog;
use std::collections::BTreeMap;

/// Host CPU characteristics relevant to the (single-threaded) runtime
/// path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCpuModel {
    /// Relative single-core throughput (desktop Ryzen boost = 1.0).
    pub single_core_score: f64,
}

/// Fixed cost constants of the runtime lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeCostModel {
    /// Driver/context/framework import time at score 1.0 (seconds).
    pub init_base_s: f64,
    /// Model-weights bytes loaded from disk and uploaded.
    pub weights_bytes: u64,
    /// Disk read bandwidth for weights (bytes/s).
    pub weights_disk_bps: f64,
    /// Output writeback + teardown at score 1.0 (seconds).
    pub finalize_base_s: f64,
}

impl Default for RuntimeCostModel {
    fn default() -> RuntimeCostModel {
        RuntimeCostModel {
            init_base_s: 7.5,
            weights_bytes: 1 << 30,
            weights_disk_bps: 1.2e9,
            finalize_base_s: 3.5,
        }
    }
}

/// Wall-time breakdown of one inference request (Fig. 8's categories).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceBreakdown {
    /// CPU-side initialization (driver, imports, weights load + upload).
    pub init_s: f64,
    /// XLA compilation.
    pub xla_compile_s: f64,
    /// GPU kernel execution.
    pub gpu_compute_s: f64,
    /// Finalization (output writeback, teardown).
    pub finalize_s: f64,
    /// Per-kernel-label GPU seconds.
    pub per_label_s: BTreeMap<String, f64>,
    /// Fraction of bytes served via unified memory (0 = fully resident).
    pub uvm_fraction: f64,
    /// The compile report (page faults etc. feed Table V).
    pub compile_report: CompileReport,
    /// The Nsight-style timeline.
    pub timeline: Timeline,
}

impl InferenceBreakdown {
    /// Total wall seconds.
    pub fn total_s(&self) -> f64 {
        self.init_s + self.xla_compile_s + self.gpu_compute_s + self.finalize_s
    }

    /// Share of time not spent computing (the paper's Server pathology).
    pub fn overhead_share(&self) -> f64 {
        1.0 - self.gpu_compute_s / self.total_s().max(1e-12)
    }

    /// Forward the breakdown into `tracer` as closed spans under the
    /// innermost open span, starting at `offset_s`. Host-side phases
    /// (init, xla_compile, finalize) are stretched by `host_scale` — the
    /// pipeline's thread-contention multiplier hits the single-threaded
    /// host path, never kernel execution. The `xla_compile` span carries
    /// the compile report's Table V counters; per-kernel-label children
    /// are laid under `gpu_compute`. Returns the traced duration.
    pub fn record_into(&self, tracer: &mut afsb_rt::Tracer, offset_s: f64, host_scale: f64) -> f64 {
        let mut at = offset_s;
        for span in self.timeline.spans() {
            let scale = if span.name == "gpu_compute" {
                1.0
            } else {
                host_scale
            };
            let d = span.duration_s * scale;
            let id = tracer.closed_span(span.name.clone(), at, d);
            match span.name.as_str() {
                "xla_compile" => {
                    for (k, v) in self.compile_report.trace_attrs() {
                        tracer.span_attr(id, k, v);
                    }
                }
                "gpu_compute" => {
                    tracer.span_attr(id, "uvm_fraction", self.uvm_fraction);
                    let mut kernel_at = at;
                    for (label, &secs) in &self.per_label_s {
                        tracer.child_span(id, label.clone(), kernel_at, secs);
                        kernel_at += secs;
                    }
                }
                _ => {}
            }
            at += d;
        }
        at - offset_s
    }

    /// Publish the breakdown's gauges and compile counters under
    /// `<prefix>.*`.
    pub fn publish_metrics(&self, metrics: &mut afsb_rt::MetricsRegistry, prefix: &str) {
        metrics.set_gauge(&format!("{prefix}.init_seconds"), self.init_s);
        metrics.set_gauge(&format!("{prefix}.xla_compile.seconds"), self.xla_compile_s);
        metrics.set_gauge(&format!("{prefix}.gpu_compute.seconds"), self.gpu_compute_s);
        metrics.set_gauge(&format!("{prefix}.finalize.seconds"), self.finalize_s);
        metrics.set_gauge(&format!("{prefix}.uvm_fraction"), self.uvm_fraction);
        self.compile_report
            .publish_metrics(metrics, &format!("{prefix}.xla_compile"));
    }
}

/// An injected GPU initialization failure: the request died before any
/// useful work, wasting the init phase's wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuInitFault {
    /// Simulated seconds burnt on the failed initialization.
    pub wasted_seconds: f64,
}

/// The GPU runtime for one device + host pairing.
#[derive(Debug, Clone)]
pub struct GpuRuntime {
    device: GpuSpec,
    host: HostCpuModel,
    costs: RuntimeCostModel,
    compile_costs: CompileCostModel,
}

impl GpuRuntime {
    /// Create a runtime.
    pub fn new(device: GpuSpec, host: HostCpuModel) -> GpuRuntime {
        GpuRuntime {
            device,
            host,
            costs: RuntimeCostModel::default(),
            compile_costs: CompileCostModel::default(),
        }
    }

    /// Override the fixed-cost model.
    pub fn with_costs(mut self, costs: RuntimeCostModel) -> GpuRuntime {
        self.costs = costs;
        self
    }

    /// The device.
    pub fn device(&self) -> &GpuSpec {
        &self.device
    }

    /// Fraction of the working set spilled to unified memory for a given
    /// peak activation footprint.
    pub fn uvm_fraction(&self, working_set_bytes: u64) -> f64 {
        let capacity = self.device.memory_bytes();
        if working_set_bytes <= capacity {
            0.0
        } else {
            1.0 - capacity as f64 / working_set_bytes as f64
        }
    }

    /// Execute one cold inference request.
    ///
    /// `cost_log` carries the model's paper-scale kernel costs;
    /// `working_set_bytes` its peak device-memory footprint. Kernel
    /// dispatch is priced on a single host thread, so thread count does
    /// not appear: that is Fig. 6's flat scaling.
    pub fn run_cold(&self, cost_log: &CostLog, working_set_bytes: u64) -> InferenceBreakdown {
        let score = self.host.single_core_score;
        let init_s = self.costs.init_base_s / score
            + self.costs.weights_bytes as f64 / self.costs.weights_disk_bps
            + self.device.pcie_seconds(self.costs.weights_bytes);

        let graph = XlaGraph::from_cost_log(cost_log);
        let report = xla::compile(&graph);
        let xla_compile_s = xla::compile_seconds(&report, &self.compile_costs, score);

        let uvm = self.uvm_fraction(working_set_bytes);
        let (per_label_s, gpu_compute_s) = price_log(cost_log, &self.device, uvm);
        let finalize_s = self.costs.finalize_base_s / score;

        let mut timeline = Timeline::new();
        timeline.push("init", init_s);
        timeline.push("xla_compile", xla_compile_s);
        timeline.push("gpu_compute", gpu_compute_s);
        timeline.push("finalize", finalize_s);

        InferenceBreakdown {
            init_s,
            xla_compile_s,
            gpu_compute_s,
            finalize_s,
            per_label_s,
            uvm_fraction: uvm,
            compile_report: report,
            timeline,
        }
    }

    /// Execute one cold inference request under fault injection.
    ///
    /// Two sites are polled: [`FaultSite::GpuInit`] right after the init
    /// phase — a due [`FaultKind::GpuInitFailure`] aborts the request,
    /// returning the seconds burnt on the failed init so the caller can
    /// charge a retry — and [`FaultSite::XlaCompile`] — a due
    /// [`FaultKind::XlaCompileStall`] inflates compilation by its factor
    /// (a phase deadline upstream turns that into a timeout). With
    /// nothing pending this is exactly [`Self::run_cold`].
    pub fn run_cold_faulted(
        &self,
        cost_log: &CostLog,
        working_set_bytes: u64,
        injector: &mut FaultInjector,
    ) -> Result<InferenceBreakdown, GpuInitFault> {
        let mut breakdown = self.run_cold(cost_log, working_set_bytes);
        if let Some(FaultKind::GpuInitFailure) = injector.poll(FaultSite::GpuInit) {
            injector.charge(breakdown.init_s);
            return Err(GpuInitFault {
                wasted_seconds: breakdown.init_s,
            });
        }
        if let Some(FaultKind::XlaCompileStall { factor }) = injector.poll(FaultSite::XlaCompile) {
            let stalled = breakdown.xla_compile_s * factor.max(1.0);
            injector.charge(stalled - breakdown.xla_compile_s);
            breakdown.xla_compile_s = stalled;
            let mut timeline = Timeline::new();
            timeline.push("init", breakdown.init_s);
            timeline.push("xla_compile", breakdown.xla_compile_s);
            timeline.push("gpu_compute", breakdown.gpu_compute_s);
            timeline.push("finalize", breakdown.finalize_s);
            breakdown.timeline = timeline;
        }
        Ok(breakdown)
    }

    /// Execute a warm request against a persistent session (§VI): init and
    /// compilation are already amortized, only a small dispatch setup
    /// remains.
    pub fn run_warm(&self, cost_log: &CostLog, working_set_bytes: u64) -> InferenceBreakdown {
        let cold = self.run_cold(cost_log, working_set_bytes);
        let score = self.host.single_core_score;
        let init_s = 0.15 / score; // request setup only
        let finalize_s = 0.4 / score; // output writeback only
        let mut timeline = Timeline::new();
        timeline.push("init", init_s);
        timeline.push("xla_compile", 0.0);
        timeline.push("gpu_compute", cold.gpu_compute_s);
        timeline.push("finalize", finalize_s);
        InferenceBreakdown {
            init_s,
            xla_compile_s: 0.0,
            gpu_compute_s: cold.gpu_compute_s,
            finalize_s,
            per_label_s: cold.per_label_s,
            uvm_fraction: cold.uvm_fraction,
            compile_report: cold.compile_report,
            timeline,
        }
    }
}

/// A persistent model session (§VI "maintaining persistent model state"):
/// pays the cold cost once, then serves warm requests.
#[derive(Debug, Clone)]
pub struct PersistentSession {
    runtime: GpuRuntime,
    warmed: bool,
}

impl PersistentSession {
    /// Create an un-warmed session.
    pub fn new(runtime: GpuRuntime) -> PersistentSession {
        PersistentSession {
            runtime,
            warmed: false,
        }
    }

    /// Whether the session has served a request.
    pub fn is_warm(&self) -> bool {
        self.warmed
    }

    /// Serve a request: cold the first time, warm afterwards.
    pub fn request(&mut self, cost_log: &CostLog, working_set_bytes: u64) -> InferenceBreakdown {
        if self.warmed {
            self.runtime.run_warm(cost_log, working_set_bytes)
        } else {
            self.warmed = true;
            self.runtime.run_cold(cost_log, working_set_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_log() -> CostLog {
        // Roughly 2PV7-shaped totals (~5e13 FLOPs).
        let mut log = CostLog::new();
        for _ in 0..48 {
            log.record("pairformer/triangle_attention", 6e11, 6e9, 4);
            log.record("pair_transition", 1e11, 4e9, 2);
        }
        for _ in 0..16 {
            log.record("diffusion/global_attention", 8e11, 8e9, 2);
        }
        log
    }

    fn server_runtime() -> GpuRuntime {
        GpuRuntime::new(
            GpuSpec::h100(),
            HostCpuModel {
                single_core_score: 0.4,
            },
        )
    }

    fn desktop_runtime() -> GpuRuntime {
        GpuRuntime::new(
            GpuSpec::rtx4080(),
            HostCpuModel {
                single_core_score: 1.0,
            },
        )
    }

    #[test]
    fn server_overhead_dominates_small_inputs() {
        let b = server_runtime().run_cold(&small_log(), 8 << 30);
        assert!(
            b.overhead_share() > 0.6,
            "server overhead share {} should dominate",
            b.overhead_share()
        );
    }

    #[test]
    fn desktop_compute_dominates() {
        let b = desktop_runtime().run_cold(&small_log(), 8 << 30);
        assert!(
            b.gpu_compute_s > b.xla_compile_s,
            "desktop compute {} should exceed compile {}",
            b.gpu_compute_s,
            b.xla_compile_s
        );
        // And the desktop's CPU-side overheads are smaller than the
        // server's in absolute terms.
        let s = server_runtime().run_cold(&small_log(), 8 << 30);
        assert!(b.init_s < s.init_s);
        assert!(b.xla_compile_s < s.xla_compile_s);
    }

    #[test]
    fn uvm_kicks_in_beyond_capacity() {
        let rt = desktop_runtime();
        assert_eq!(rt.uvm_fraction(8 << 30), 0.0);
        let f = rt.uvm_fraction(32 << 30);
        assert!(f > 0.4 && f < 0.6, "uvm fraction {f}");
        // Spilling slows compute for bandwidth-heavy kernels.
        let mut heavy = CostLog::new();
        for _ in 0..16 {
            heavy.record("diffusion/global_attention", 1e10, 2e10, 2);
        }
        let resident = rt.run_cold(&heavy, 8 << 30);
        let spilled = rt.run_cold(&heavy, 32 << 30);
        assert!(spilled.gpu_compute_s > resident.gpu_compute_s * 1.5);
    }

    #[test]
    fn warm_requests_skip_init_and_compile() {
        let mut session = PersistentSession::new(server_runtime());
        let cold = session.request(&small_log(), 8 << 30);
        assert!(session.is_warm());
        let warm = session.request(&small_log(), 8 << 30);
        assert_eq!(warm.xla_compile_s, 0.0);
        assert!(warm.init_s < cold.init_s / 10.0);
        assert!((warm.gpu_compute_s - cold.gpu_compute_s).abs() < 1e-9);
        assert!(warm.total_s() < cold.total_s() * 0.5);
    }

    #[test]
    fn faulted_run_without_faults_matches_clean_run() {
        let rt = desktop_runtime();
        let clean = rt.run_cold(&small_log(), 8 << 30);
        let faulted = rt
            .run_cold_faulted(&small_log(), 8 << 30, &mut FaultInjector::none())
            .expect("no fault armed");
        assert_eq!(clean, faulted);
    }

    #[test]
    fn init_failure_wastes_init_then_retry_succeeds() {
        use afsb_rt::fault::FaultPlan;
        let rt = server_runtime();
        let mut inj = FaultPlan::none().with(FaultKind::GpuInitFailure).injector();
        let err = rt
            .run_cold_faulted(&small_log(), 8 << 30, &mut inj)
            .expect_err("armed init failure must abort");
        let clean = rt.run_cold(&small_log(), 8 << 30);
        assert_eq!(err.wasted_seconds, clean.init_s);
        assert_eq!(inj.total_lost_seconds(), clean.init_s);
        let retry = rt
            .run_cold_faulted(&small_log(), 8 << 30, &mut inj)
            .expect("fault consumed: retry completes");
        assert_eq!(retry, clean);
    }

    #[test]
    fn compile_stall_inflates_only_the_compile_phase() {
        use afsb_rt::fault::FaultPlan;
        let rt = server_runtime();
        let clean = rt.run_cold(&small_log(), 8 << 30);
        let mut inj = FaultPlan::none()
            .with(FaultKind::XlaCompileStall { factor: 4.0 })
            .injector();
        let stalled = rt
            .run_cold_faulted(&small_log(), 8 << 30, &mut inj)
            .expect("a stall does not abort");
        assert!((stalled.xla_compile_s - clean.xla_compile_s * 4.0).abs() < 1e-9);
        assert_eq!(stalled.init_s, clean.init_s);
        assert_eq!(stalled.gpu_compute_s, clean.gpu_compute_s);
        assert!((stalled.timeline.total_seconds() - stalled.total_s()).abs() < 1e-9);
        assert!((inj.total_lost_seconds() - clean.xla_compile_s * 3.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_matches_breakdown() {
        let b = desktop_runtime().run_cold(&small_log(), 8 << 30);
        assert!((b.timeline.total_seconds() - b.total_s()).abs() < 1e-9);
        assert_eq!(b.timeline.seconds_of("gpu_compute"), b.gpu_compute_s);
    }

    #[test]
    fn record_into_scales_host_phases_and_nests_kernels() {
        let b = server_runtime().run_cold(&small_log(), 8 << 30);
        let mut tracer = afsb_rt::Tracer::new();
        tracer.begin("inference");
        let traced = b.record_into(&mut tracer, 5.0, 2.0);
        tracer.advance(5.0 + traced);
        tracer.end();
        // Host phases doubled, gpu_compute untouched.
        let expected = 2.0 * (b.init_s + b.xla_compile_s + b.finalize_s) + b.gpu_compute_s;
        assert!((traced - expected).abs() < 1e-9);
        let names = tracer.span_names();
        assert!(names.contains(&"xla_compile"));
        assert!(names.contains(&"gpu_compute"));
        // Each distinct kernel label shows up as a child span.
        for label in b.per_label_s.keys() {
            assert!(names.contains(&label.as_str()), "missing kernel {label}");
        }

        let mut m = afsb_rt::MetricsRegistry::new();
        b.publish_metrics(&mut m, "inference");
        assert_eq!(
            m.gauge("inference.gpu_compute.seconds"),
            Some(b.gpu_compute_s)
        );
        assert!(m.counter("inference.xla_compile.ShapeUtil::ByteSizeOf.calls") > 0);
    }
}
