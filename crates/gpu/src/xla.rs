//! XLA-style ahead-of-time compilation model.
//!
//! Before any GPU kernel runs, JAX traces the model into an op graph and
//! XLA compiles it: fusion passes, buffer assignment (`ShapeUtil::
//! ByteSizeOf` per operand), and arena allocation whose first-touch
//! zero-fill (`std::vector::_M_fill_insert` in the paper's profile)
//! page-faults its way through hundreds of MiB. Table V attributes
//! 12–17 % of inference-phase page faults to `_M_fill_insert`, 4–6 % of
//! dTLB misses to `ByteSizeOf`, and 6–7 % of LLC misses to
//! `copy_to_iter` (weights load). This module produces those event
//! populations mechanistically from the op graph.

use afsb_tensor::cost::CostLog;

/// One node of the compile graph.
#[derive(Debug, Clone, PartialEq)]
pub struct XlaOp {
    /// Kernel label the op came from.
    pub label: String,
    /// Output buffer size in bytes.
    pub output_bytes: u64,
    /// Whether the op is an element-wise candidate for fusion.
    pub fusible: bool,
}

/// The traced op graph of one model invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XlaGraph {
    /// Ops in trace order.
    pub ops: Vec<XlaOp>,
}

impl XlaGraph {
    /// Build a graph from a kernel cost log: one op per distinct launch
    /// group, with output size estimated from the record's byte traffic.
    pub fn from_cost_log(log: &CostLog) -> XlaGraph {
        let ops = log
            .entries()
            .iter()
            .map(|e| {
                let label = e.label.clone();
                // Roughly a third of one launch's roofline traffic is the
                // output buffer (buffers are reused across launches).
                let output_bytes = (e.bytes / (3.0 * e.launches.max(1) as f64)).max(256.0) as u64;
                let fusible = label.contains("transition")
                    || label.contains("norm")
                    || label.contains("gate")
                    || label.contains("embed");
                XlaOp {
                    label,
                    output_bytes,
                    fusible,
                }
            })
            .collect();
        XlaGraph { ops }
    }

    /// Number of ops before fusion.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Counters and outputs of one compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileReport {
    /// Ops traced.
    pub ops_traced: usize,
    /// Ops remaining after fusion.
    pub ops_after_fusion: usize,
    /// `ByteSizeOf` invocations (per op: operands + output shape walks).
    pub byte_size_of_calls: u64,
    /// Total buffer arena allocated (bytes, 256-byte aligned slabs).
    pub arena_bytes: u64,
    /// Minor page faults from first-touch zero-fill of the arena.
    pub page_faults: u64,
    /// Bytes zero-filled by `_M_fill_insert`-style vector growth.
    pub fill_insert_bytes: u64,
    /// Shape/metadata working set walked during buffer assignment.
    pub metadata_bytes: u64,
}

impl CompileReport {
    /// Key/value trace attributes for the `xla_compile` span, under the
    /// paper's Table V symbol names (`ShapeUtil::ByteSizeOf` shape walks,
    /// `_M_fill_insert` arena zero-fill).
    pub fn trace_attrs(&self) -> Vec<(String, afsb_rt::Json)> {
        vec![
            ("ops_traced".into(), (self.ops_traced as u64).into()),
            (
                "ops_after_fusion".into(),
                (self.ops_after_fusion as u64).into(),
            ),
            (
                "ShapeUtil::ByteSizeOf.calls".into(),
                self.byte_size_of_calls.into(),
            ),
            ("arena_bytes".into(), self.arena_bytes.into()),
            ("page_faults".into(), self.page_faults.into()),
            ("_M_fill_insert.bytes".into(), self.fill_insert_bytes.into()),
        ]
    }

    /// Publish the compile counters under `<prefix>.<name>`.
    pub fn publish_metrics(&self, metrics: &mut afsb_rt::MetricsRegistry, prefix: &str) {
        metrics.inc(&format!("{prefix}.ops_traced"), self.ops_traced as u64);
        metrics.inc(
            &format!("{prefix}.ShapeUtil::ByteSizeOf.calls"),
            self.byte_size_of_calls,
        );
        metrics.inc(&format!("{prefix}.arena_bytes"), self.arena_bytes);
        metrics.inc(&format!("{prefix}.page_faults"), self.page_faults);
        metrics.inc(
            &format!("{prefix}._M_fill_insert.bytes"),
            self.fill_insert_bytes,
        );
    }
}

/// Tunable compile-cost constants (CPU work per unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileCostModel {
    /// Single-core cycles per traced op (trace + canonicalize).
    pub cycles_per_op: f64,
    /// Cycles per `ByteSizeOf` call (shape walk).
    pub cycles_per_bso: f64,
    /// Cycles per arena byte (zero-fill + assignment bookkeeping).
    pub cycles_per_arena_byte: f64,
    /// Fixed pass overhead cycles (HLO pipeline setup).
    pub fixed_cycles: f64,
}

impl Default for CompileCostModel {
    fn default() -> CompileCostModel {
        // Each cost-log record stands for a whole layer instance, i.e.
        // many HLO ops; `cycles_per_op` prices that bundle. Calibrated so
        // a 2PV7-sized graph compiles in ~10 s on the desktop host
        // (Fig. 8) and proportionally longer on the slower server core.
        CompileCostModel {
            cycles_per_op: 1.5e8,
            cycles_per_bso: 2000.0,
            cycles_per_arena_byte: 2.0,
            fixed_cycles: 8.0e9,
        }
    }
}

/// Compile a graph: run the fusion pass and size the buffer arena.
pub fn compile(graph: &XlaGraph) -> CompileReport {
    // Fusion: runs of consecutive fusible ops with the same label collapse
    // into one kernel.
    let mut ops_after = 0usize;
    let mut prev: Option<(&str, bool)> = None;
    for op in &graph.ops {
        let same_run = matches!(prev, Some((label, true)) if label == op.label && op.fusible);
        if !same_run {
            ops_after += 1;
        }
        prev = Some((op.label.as_str(), op.fusible));
    }

    // Buffer assignment with slab reuse: the arena holds the peak live
    // set, modelled as one slab per *distinct* op label (buffers of
    // repeated layer instances are reused) plus double-buffering.
    let mut bso = 0u64;
    let mut peak_by_label: std::collections::BTreeMap<&str, u64> =
        std::collections::BTreeMap::new();
    for op in &graph.ops {
        // Operands (assume 2) + output shape queries.
        bso += 3;
        let slab = op.output_bytes.div_ceil(256) * 256;
        let slot = peak_by_label.entry(op.label.as_str()).or_insert(0);
        *slot = (*slot).max(slab);
    }
    let arena_bytes: u64 = peak_by_label.values().sum::<u64>() * 2;
    let page_faults = arena_bytes.div_ceil(4096);
    CompileReport {
        ops_traced: graph.ops.len(),
        ops_after_fusion: ops_after,
        byte_size_of_calls: bso,
        arena_bytes,
        page_faults,
        fill_insert_bytes: arena_bytes,
        metadata_bytes: (graph.ops.len() as u64) * 512,
    }
}

/// Compile wall time on a single host core.
///
/// `cpu_score` is the relative single-core throughput of the host
/// (1.0 = the desktop Ryzen at boost; the Xeon's lower clock and slower
/// allocation path give it ~0.4).
pub fn compile_seconds(report: &CompileReport, model: &CompileCostModel, cpu_score: f64) -> f64 {
    assert!(cpu_score > 0.0, "cpu score must be positive");
    let cycles = model.fixed_cycles
        + model.cycles_per_op * report.ops_after_fusion as f64
        + model.cycles_per_bso * report.byte_size_of_calls as f64
        + model.cycles_per_arena_byte * report.arena_bytes as f64;
    // 1.0 score ≈ a 5.6 GHz core retiring ~2 cycles of this work per Hz.
    cycles / (5.6e9 * cpu_score)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(labels: &[(&str, u64)]) -> CostLog {
        let mut log = CostLog::new();
        for &(label, n) in labels {
            for _ in 0..n {
                log.record(label, 1e9, 3e8, 1);
            }
        }
        log
    }

    #[test]
    fn graph_built_from_log() {
        let log = log_with(&[("pairformer/triangle_attention", 4), ("pair_transition", 2)]);
        let g = XlaGraph::from_cost_log(&log);
        assert_eq!(g.len(), 6);
        assert!(g.ops.iter().any(|o| o.fusible));
    }

    #[test]
    fn fusion_collapses_elementwise_runs() {
        let log = log_with(&[("pair_transition", 8)]);
        let g = XlaGraph::from_cost_log(&log);
        let r = compile(&g);
        assert_eq!(r.ops_traced, 8);
        assert_eq!(r.ops_after_fusion, 1);
        // Non-fusible ops do not collapse.
        let log2 = log_with(&[("triangle_attention", 8)]);
        let r2 = compile(&XlaGraph::from_cost_log(&log2));
        assert_eq!(r2.ops_after_fusion, 8);
    }

    #[test]
    fn page_faults_track_arena() {
        let log = log_with(&[("big_kernel", 10)]);
        let r = compile(&XlaGraph::from_cost_log(&log));
        assert_eq!(r.page_faults, r.arena_bytes.div_ceil(4096));
        assert!(r.arena_bytes > 0);
        assert_eq!(r.byte_size_of_calls, 30);
    }

    #[test]
    fn compile_time_scales_inverse_cpu_score() {
        let log = log_with(&[("k", 100)]);
        let r = compile(&XlaGraph::from_cost_log(&log));
        let m = CompileCostModel::default();
        let fast = compile_seconds(&r, &m, 1.0);
        let slow = compile_seconds(&r, &m, 0.4);
        assert!((slow / fast - 2.5).abs() < 1e-9);
    }

    #[test]
    fn bigger_graph_compiles_longer() {
        let m = CompileCostModel::default();
        let small = compile(&XlaGraph::from_cost_log(&log_with(&[("k", 10)])));
        let large = compile(&XlaGraph::from_cost_log(&log_with(&[("k", 1000)])));
        assert!(
            compile_seconds(&large, &m, 1.0) > compile_seconds(&small, &m, 1.0) * 2.0,
            "compile time must grow with graph size"
        );
    }
}
