//! GPU device specifications.

/// A GPU device model for roofline pricing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak dense bf16/fp16 tensor throughput (TFLOP/s).
    pub peak_tflops: f64,
    /// Device memory capacity (GiB).
    pub memory_gib: f64,
    /// Device memory bandwidth (GiB/s).
    pub mem_bw_gibs: f64,
    /// Host↔device interconnect bandwidth (GiB/s).
    pub pcie_gibs: f64,
    /// Per-kernel launch overhead (microseconds) paid on the single host
    /// dispatch thread.
    pub launch_overhead_us: f64,
    /// Fraction of peak compute that AF3-style kernels achieve. AF3's
    /// small, bias-heavy attention kernels run very far from peak;
    /// calibrated so 2PV7-scale inference compute lands at Fig. 8's
    /// magnitudes (~71 s on the RTX 4080, ~14 s on the H100).
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth achieved by memory-bound kernels.
    pub bandwidth_efficiency: f64,
    /// Divisor applied to interconnect bandwidth for unified-memory
    /// traffic (page-fault handling and duplicate migrations).
    pub uvm_penalty: f64,
}

impl GpuSpec {
    /// NVIDIA H100 SXM 80 GB (the paper's Server GPU).
    pub fn h100() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA H100 80GB",
            peak_tflops: 989.0,
            memory_gib: 80.0,
            mem_bw_gibs: 3350.0,
            pcie_gibs: 55.0,
            launch_overhead_us: 6.0,
            compute_efficiency: 0.0045,
            bandwidth_efficiency: 0.55,
            uvm_penalty: 2.5,
        }
    }

    /// NVIDIA RTX 4080 16 GB (the paper's Desktop GPU).
    pub fn rtx4080() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA RTX 4080 16GB",
            peak_tflops: 195.0,
            memory_gib: 16.0,
            mem_bw_gibs: 717.0,
            pcie_gibs: 26.0,
            launch_overhead_us: 4.0,
            compute_efficiency: 0.0045,
            bandwidth_efficiency: 0.60,
            uvm_penalty: 3.0,
        }
    }

    /// Achievable compute throughput (FLOP/s).
    pub fn effective_flops(&self) -> f64 {
        self.peak_tflops * 1e12 * self.compute_efficiency
    }

    /// Achievable memory bandwidth (bytes/s).
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bw_gibs * (1u64 << 30) as f64 * self.bandwidth_efficiency
    }

    /// Device memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gib * (1u64 << 30) as f64) as u64
    }

    /// Seconds to move `bytes` across the host interconnect.
    pub fn pcie_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.pcie_gibs * (1u64 << 30) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_outclasses_rtx4080() {
        let h = GpuSpec::h100();
        let r = GpuSpec::rtx4080();
        assert!(h.effective_flops() > 3.0 * r.effective_flops());
        assert!(h.effective_bandwidth() > 3.0 * r.effective_bandwidth());
        assert!(h.memory_gib > r.memory_gib * 4.0);
    }

    #[test]
    fn pcie_transfer_time() {
        let h = GpuSpec::h100();
        let t = h.pcie_seconds(55 * (1 << 30));
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiencies_bounded() {
        for d in [GpuSpec::h100(), GpuSpec::rtx4080()] {
            assert!(d.compute_efficiency > 0.0 && d.compute_efficiency < 1.0);
            assert!(d.bandwidth_efficiency > 0.0 && d.bandwidth_efficiency <= 1.0);
        }
    }
}
