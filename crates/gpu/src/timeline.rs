//! Nsight-Systems-style span timeline.

use afsb_rt::obs::{SpanId, Tracer};
use std::fmt;

/// Error returned by [`Timeline::try_push`] for invalid durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDuration;

impl fmt::Display for InvalidDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span duration must be a non-negative finite number")
    }
}

impl std::error::Error for InvalidDuration {}

/// One named span on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name (e.g. `xla_compile`).
    pub name: String,
    /// Start offset in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub duration_s: f64,
}

/// An append-only sequential timeline (spans do not overlap; the host
/// dispatch path is single-threaded, which is exactly the paper's
/// finding).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Create an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Append a span after the current end. Negative or non-finite
    /// durations saturate to a zero-length span instead of panicking —
    /// cost models fed hostile inputs (fault injection, degraded configs)
    /// must never take down the run just to record its timeline. Use
    /// [`Timeline::try_push`] to surface the invalid duration instead.
    pub fn push(&mut self, name: impl Into<String>, duration_s: f64) {
        let duration_s = if duration_s.is_finite() {
            duration_s.max(0.0)
        } else {
            0.0
        };
        let start_s = self.total_seconds();
        self.spans.push(Span {
            name: name.into(),
            start_s,
            duration_s,
        });
    }

    /// Append a span after the current end, rejecting negative or
    /// non-finite durations.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDuration`] (recording nothing) when `duration_s`
    /// is negative, NaN or infinite.
    pub fn try_push(
        &mut self,
        name: impl Into<String>,
        duration_s: f64,
    ) -> Result<(), InvalidDuration> {
        if !duration_s.is_finite() || duration_s < 0.0 {
            return Err(InvalidDuration);
        }
        self.push(name, duration_s);
        Ok(())
    }

    /// All spans in order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// End time of the last span.
    pub fn total_seconds(&self) -> f64 {
        self.spans
            .last()
            .map(|s| s.start_s + s.duration_s)
            .unwrap_or(0.0)
    }

    /// Duration of the span with `name` (summed over repeats).
    pub fn seconds_of(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_s)
            .sum()
    }

    /// Share of total time spent in `name`, in `[0, 1]`.
    pub fn share_of(&self, name: &str) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.seconds_of(name) / total
        }
    }

    /// Forward every span into `tracer` as a closed child of the
    /// innermost open span, shifted by `offset_s` and stretched by
    /// `scale` (host-thread contention inflates the recorded host phases;
    /// `1.0` replays the timeline verbatim). Returns the created span
    /// ids, in timeline order.
    pub fn record_into(&self, tracer: &mut Tracer, offset_s: f64, scale: f64) -> Vec<SpanId> {
        self.spans
            .iter()
            .map(|s| {
                tracer.closed_span(
                    s.name.clone(),
                    offset_s + s.start_s * scale,
                    s.duration_s * scale,
                )
            })
            .collect()
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_seconds().max(1e-12);
        for s in &self.spans {
            let pct = s.duration_s / total * 100.0;
            let bar = "#".repeat((pct / 2.5).round() as usize);
            writeln!(
                f,
                "{:<18} {:>8.2}s {:>5.1}% |{bar}",
                s.name, s.duration_s, pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_sequential() {
        let mut t = Timeline::new();
        t.push("init", 2.0);
        t.push("compile", 3.0);
        t.push("compute", 5.0);
        assert_eq!(t.total_seconds(), 10.0);
        assert_eq!(t.spans()[1].start_s, 2.0);
        assert_eq!(t.spans()[2].start_s, 5.0);
    }

    #[test]
    fn shares_and_lookups() {
        let mut t = Timeline::new();
        t.push("a", 1.0);
        t.push("b", 3.0);
        t.push("a", 1.0);
        assert_eq!(t.seconds_of("a"), 2.0);
        assert!((t.share_of("b") - 0.6).abs() < 1e-12);
        assert_eq!(t.seconds_of("missing"), 0.0);
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert_eq!(t.total_seconds(), 0.0);
        assert_eq!(t.share_of("x"), 0.0);
    }

    #[test]
    fn display_contains_bars() {
        let mut t = Timeline::new();
        t.push("gpu_compute", 7.0);
        let s = t.to_string();
        assert!(s.contains("gpu_compute"));
        assert!(s.contains('|'));
    }

    #[test]
    fn push_saturates_invalid_durations_instead_of_panicking() {
        // Regression: `push` used to assert on negative durations, so a
        // cost model emitting a tiny negative residual aborted the run.
        let mut t = Timeline::new();
        t.push("ok", 2.0);
        t.push("negative", -3.0);
        t.push("nan", f64::NAN);
        t.push("after", 1.0);
        assert_eq!(t.total_seconds(), 3.0);
        assert_eq!(t.seconds_of("negative"), 0.0);
        assert_eq!(t.seconds_of("nan"), 0.0);
        assert_eq!(t.spans()[3].start_s, 2.0);
    }

    #[test]
    fn try_push_rejects_invalid_durations() {
        let mut t = Timeline::new();
        assert_eq!(t.try_push("bad", -1.0), Err(InvalidDuration));
        assert_eq!(t.try_push("bad", f64::INFINITY), Err(InvalidDuration));
        assert!(t.spans().is_empty(), "rejected spans must not be recorded");
        assert_eq!(t.try_push("good", 4.0), Ok(()));
        assert_eq!(t.total_seconds(), 4.0);
        assert!(InvalidDuration.to_string().contains("non-negative"));
    }

    #[test]
    fn record_into_replays_spans_under_the_open_span() {
        let mut t = Timeline::new();
        t.push("init", 2.0);
        t.push("xla_compile", 3.0);
        let mut tracer = Tracer::new();
        tracer.begin("inference");
        let ids = t.record_into(&mut tracer, 10.0, 2.0);
        tracer.advance(20.0);
        tracer.end();
        assert_eq!(ids.len(), 2);
        assert_eq!(tracer.span_seconds(ids[0]), 4.0); // scaled 2x
        assert_eq!(tracer.span_seconds(ids[1]), 6.0);
        assert_eq!(
            tracer.span_names(),
            vec!["inference", "init", "xla_compile"]
        );
    }
}
