//! Nsight-Systems-style span timeline.

use std::fmt;

/// One named span on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name (e.g. `xla_compile`).
    pub name: String,
    /// Start offset in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub duration_s: f64,
}

/// An append-only sequential timeline (spans do not overlap; the host
/// dispatch path is single-threaded, which is exactly the paper's
/// finding).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Create an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Append a span after the current end.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is negative.
    pub fn push(&mut self, name: impl Into<String>, duration_s: f64) {
        assert!(duration_s >= 0.0, "span duration must be non-negative");
        let start_s = self.total_seconds();
        self.spans.push(Span {
            name: name.into(),
            start_s,
            duration_s,
        });
    }

    /// All spans in order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// End time of the last span.
    pub fn total_seconds(&self) -> f64 {
        self.spans
            .last()
            .map(|s| s.start_s + s.duration_s)
            .unwrap_or(0.0)
    }

    /// Duration of the span with `name` (summed over repeats).
    pub fn seconds_of(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_s)
            .sum()
    }

    /// Share of total time spent in `name`, in `[0, 1]`.
    pub fn share_of(&self, name: &str) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.seconds_of(name) / total
        }
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_seconds().max(1e-12);
        for s in &self.spans {
            let pct = s.duration_s / total * 100.0;
            let bar = "#".repeat((pct / 2.5).round() as usize);
            writeln!(
                f,
                "{:<18} {:>8.2}s {:>5.1}% |{bar}",
                s.name, s.duration_s, pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_sequential() {
        let mut t = Timeline::new();
        t.push("init", 2.0);
        t.push("compile", 3.0);
        t.push("compute", 5.0);
        assert_eq!(t.total_seconds(), 10.0);
        assert_eq!(t.spans()[1].start_s, 2.0);
        assert_eq!(t.spans()[2].start_s, 5.0);
    }

    #[test]
    fn shares_and_lookups() {
        let mut t = Timeline::new();
        t.push("a", 1.0);
        t.push("b", 3.0);
        t.push("a", 1.0);
        assert_eq!(t.seconds_of("a"), 2.0);
        assert!((t.share_of("b") - 0.6).abs() < 1e-12);
        assert_eq!(t.seconds_of("missing"), 0.0);
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert_eq!(t.total_seconds(), 0.0);
        assert_eq!(t.share_of("x"), 0.0);
    }

    #[test]
    fn display_contains_bars() {
        let mut t = Timeline::new();
        t.push("gpu_compute", 7.0);
        let s = t.to_string();
        assert!(s.contains("gpu_compute"));
        assert!(s.contains('|'));
    }
}
