#!/usr/bin/env bash
# Offline tier-1 gate for AFSysBench-RS.
#
# The workspace is hermetic: it has zero external dependencies (see
# DESIGN.md "Hermetic build & determinism"), so every step below runs with
# --offline and must succeed with no network access and an empty cargo
# registry cache.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Chaos determinism sweep: re-run the fault-injection suite under three
# fixed seeds. The suite asserts that every seeded plan reaches the same
# terminal outcome with byte-identical reports on repeat runs, and that
# a fault-free plan reproduces the baseline pipeline exactly.
for seed in 101 202 303; do
    run env AFSB_CHAOS_SEED="$seed" cargo test -q --offline --test chaos
done

echo "==> tier-1 gate passed"
