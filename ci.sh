#!/usr/bin/env bash
# Offline tier-1 gate for AFSysBench-RS.
#
# The workspace is hermetic: it has zero external dependencies (see
# DESIGN.md "Hermetic build & determinism"), so every step below runs with
# --offline and must succeed with no network access and an empty cargo
# registry cache.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Chaos determinism sweep: re-run the fault-injection suite under three
# fixed seeds. The suite asserts that every seeded plan reaches the same
# terminal outcome with byte-identical reports on repeat runs, and that
# a fault-free plan reproduces the baseline pipeline exactly. The
# chaos_serving suite rides the same seeds: every seeded fault schedule
# over the serving engine must conserve requests (admitted = completed +
# degraded + shed + failed) and wake coalesced waiters exactly once.
for seed in 101 202 303; do
    run env AFSB_CHAOS_SEED="$seed" cargo test -q --offline --test chaos
    run env AFSB_CHAOS_SEED="$seed" cargo test -q --offline -p afsb-serve --test chaos_serving
done

# Trace determinism gate: the traced pipeline example must emit
# byte-identical Chrome-trace and flamegraph artifacts across two runs
# of the same seed. The example itself re-parses the exported trace
# with rt::json before writing it, so a cmp failure means
# nondeterminism, not malformed JSON.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
mkdir -p "$trace_dir/a" "$trace_dir/b"
run cargo run --release --offline --example trace_pipeline -- "$trace_dir/a"
run cargo run --release --offline --example trace_pipeline -- "$trace_dir/b"
run cmp "$trace_dir/a/trace.json" "$trace_dir/b/trace.json"
run cmp "$trace_dir/a/flame.txt" "$trace_dir/b/flame.txt"

# Golden-results gate: regenerate the committed quick-mode experiment
# outputs and diff them. Any drift in a table the paper reproduces must
# show up as an intentional update to results/quick/, not silently.
golden_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$golden_dir"' EXIT
GOLDEN_EXPERIMENTS=(table1 table2 fig2 estimator table4 table6 ablation-persistent ablation-storage serve serve-xl serve-chaos serve-telemetry serve-whatif)
run target/release/afsysbench "${GOLDEN_EXPERIMENTS[@]}" --quick --out "$golden_dir/quick" > /dev/null
for exp in "${GOLDEN_EXPERIMENTS[@]}"; do
    run diff -u "results/quick/$exp.txt" "$golden_dir/quick/$exp.txt"
done

# Perf-regression gate: the profiler must be byte-deterministic, and the
# fresh profile must stay within tolerance of the committed baseline —
# per-symbol cycle shares, wall seconds, derived metrics, sampled top-N.
# `perf-diff` exits nonzero naming the offending symbols otherwise.
run target/release/afsysbench profile pipeline --out "$golden_dir/perf-a" > /dev/null
run target/release/afsysbench profile pipeline --out "$golden_dir/perf-b" > /dev/null
run cmp "$golden_dir/perf-a/BENCH_pipeline.json" "$golden_dir/perf-b/BENCH_pipeline.json"
run target/release/afsysbench perf-diff results/BENCH_pipeline.json "$golden_dir/perf-a/BENCH_pipeline.json"
run target/release/afsysbench profile msa-sweep --quick --out "$golden_dir/perf-a" > /dev/null
run target/release/afsysbench perf-diff results/BENCH_msa_sweep.json "$golden_dir/perf-a/BENCH_msa_sweep.json"

# Serving determinism + regression gate: two same-seed serve profiles
# must be byte-identical, and the fresh profile must stay within
# tolerance of the committed baseline (throughput, latency percentiles,
# hit rate, occupancy, and the telemetry-derived attr.*/slo.* metrics
# per scenario). --timeline adds the gauge-timeline + SLO artifact and
# the latency-histogram CSV, both gated byte-for-byte: two runs must
# agree, and the timeline must match the committed quick golden.
run target/release/afsysbench profile serve --quick --timeline --out "$golden_dir/perf-a" > /dev/null
run target/release/afsysbench profile serve --quick --timeline --out "$golden_dir/perf-b" > /dev/null
run cmp "$golden_dir/perf-a/BENCH_serve.json" "$golden_dir/perf-b/BENCH_serve.json"
run cmp "$golden_dir/perf-a/serve.timeline.txt" "$golden_dir/perf-b/serve.timeline.txt"
run cmp "$golden_dir/perf-a/serve.latency.csv" "$golden_dir/perf-b/serve.latency.csv"
run diff -u results/quick/serve-timeline.txt "$golden_dir/perf-a/serve.timeline.txt"
run target/release/afsysbench perf-diff results/BENCH_serve.json "$golden_dir/perf-a/BENCH_serve.json"

# Event-engine scale gate: serve-xl pushes a 10k-request Poisson/Zipf
# stream (100k in full mode) through the discrete-event scheduler. Two
# same-seed profiles must be byte-identical — one heap, one clock, no
# hidden iteration-order dependence at scale — and the fresh profile
# must stay within tolerance of the committed baseline.
run target/release/afsysbench profile serve-xl --quick --out "$golden_dir/perf-a" > /dev/null
run target/release/afsysbench profile serve-xl --quick --out "$golden_dir/perf-b" > /dev/null
run cmp "$golden_dir/perf-a/BENCH_serve_xl.json" "$golden_dir/perf-b/BENCH_serve_xl.json"
run target/release/afsysbench perf-diff results/BENCH_serve_xl.json "$golden_dir/perf-a/BENCH_serve_xl.json"

# Chaos-serving SLO gate: the fault-injection matrix must be
# byte-deterministic across two same-seed profiles and stay within
# tolerance of the committed baseline — availability, goodput and
# disposition counts per scenario. The strict SLO orderings themselves
# (baseline > each chaos scenario > kitchen-sink) are asserted by the
# chaos_serving suite above.
run target/release/afsysbench profile serve-chaos --quick --timeline --out "$golden_dir/perf-a" > /dev/null
run target/release/afsysbench profile serve-chaos --quick --timeline --out "$golden_dir/perf-b" > /dev/null
run cmp "$golden_dir/perf-a/BENCH_serve_chaos.json" "$golden_dir/perf-b/BENCH_serve_chaos.json"
run cmp "$golden_dir/perf-a/serve-chaos.timeline.txt" "$golden_dir/perf-b/serve-chaos.timeline.txt"
run target/release/afsysbench perf-diff results/BENCH_serve_chaos.json "$golden_dir/perf-a/BENCH_serve_chaos.json"

# Causal-profiler gate: the what-if projection run must be
# byte-deterministic (baseline, report, collapsed stacks and the
# --critical-path artifact all identical across two same-seed runs) and
# its critical-path shares, binding census and projection errors must
# stay within tolerance of the committed baseline. The projection
# *accuracy* gates themselves (MSA-dominant blame, GPU 2x < 1 %,
# on-path error <= 10 pp) are asserted by crates/serve/tests/causal.rs.
run target/release/afsysbench profile serve-whatif --quick --critical-path --out "$golden_dir/perf-a" > /dev/null
run target/release/afsysbench profile serve-whatif --quick --critical-path --out "$golden_dir/perf-b" > /dev/null
run cmp "$golden_dir/perf-a/BENCH_serve_whatif.json" "$golden_dir/perf-b/BENCH_serve_whatif.json"
run cmp "$golden_dir/perf-a/serve-whatif.critpath.txt" "$golden_dir/perf-b/serve-whatif.critpath.txt"
run target/release/afsysbench perf-diff results/BENCH_serve_whatif.json "$golden_dir/perf-a/BENCH_serve_whatif.json"

echo "==> tier-1 gate passed"
