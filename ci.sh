#!/usr/bin/env bash
# Offline tier-1 gate for AFSysBench-RS.
#
# The workspace is hermetic: it has zero external dependencies (see
# DESIGN.md "Hermetic build & determinism"), so every step below runs with
# --offline and must succeed with no network access and an empty cargo
# registry cache.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1 gate passed"
