//! End-to-end integration tests: the full pipeline across crates, with
//! the paper's headline observations asserted as invariants.

use afsysbench::core::context::{BenchContext, ContextConfig};
use afsysbench::core::msa_phase::MsaPhaseOptions;
use afsysbench::core::pipeline::{run_pipeline, PipelineOptions};
use afsysbench::model::ModelConfig;
use afsysbench::seq::samples::SampleId;
use afsysbench::simarch::Platform;

use std::sync::{Mutex, OnceLock};

/// Shared executed-search cache: building the synthetic databases and
/// running the search engine dominates test time, and the data is
/// immutable, so every test in this binary shares one context.
fn shared_data(id: SampleId) -> std::sync::Arc<afsysbench::core::context::SampleSearchData> {
    static CTX: OnceLock<Mutex<BenchContext>> = OnceLock::new();
    CTX.get_or_init(|| Mutex::new(BenchContext::new(ContextConfig::test())))
        .lock()
        .expect("context lock")
        .sample_data(id)
}

fn options() -> PipelineOptions {
    PipelineOptions {
        msa: MsaPhaseOptions {
            sample_cap: 400_000,
            ..MsaPhaseOptions::default()
        },
        model: Some(ModelConfig::paper()),
        seed: 9,
    }
}

#[test]
fn every_sample_completes_on_both_platforms() {
    for id in SampleId::all() {
        let data = shared_data(id);
        for platform in Platform::all() {
            let r = run_pipeline(&data, platform, 4, &options());
            assert!(r.completed(), "{id} on {platform} must complete");
            assert!(r.total_seconds() > 0.0);
            assert_eq!(
                r.inference.model.structure.len(),
                data.sample.assembly.total_residues()
            );
        }
    }
}

#[test]
fn observation_msa_dominates_end_to_end() {
    // Paper §V-B1: MSA is ~75–94 % of total under optimal threading.
    for id in [SampleId::S1yy9, SampleId::Promo, SampleId::S6qnr] {
        let data = shared_data(id);
        for platform in Platform::all() {
            let r = run_pipeline(&data, platform, 4, &options());
            assert!(
                r.msa_share() > 0.55,
                "{id} on {platform}: MSA share {:.2} must dominate",
                r.msa_share()
            );
        }
    }
}

#[test]
fn observation_desktop_wins_end_to_end_midscale() {
    // Paper Observation 1: the Desktop consistently beats the Server on
    // mid-scale inputs.
    for id in [SampleId::S2pv7, SampleId::S1yy9] {
        let data = shared_data(id);
        let server = run_pipeline(&data, Platform::Server, 4, &options());
        let desktop = run_pipeline(&data, Platform::Desktop, 4, &options());
        assert!(
            desktop.total_seconds() < server.total_seconds(),
            "{id}: desktop {:.0}s must beat server {:.0}s",
            desktop.total_seconds(),
            server.total_seconds()
        );
    }
}

#[test]
fn observation_promo_msa_exceeds_1yy9_despite_similar_length() {
    // Paper Observation 2: poly-Q stretches make promo (857 aa) cost more
    // MSA time than 1YY9 (881 aa).
    let promo = shared_data(SampleId::Promo);
    let yy9 = shared_data(SampleId::S1yy9);
    // Low-complexity inflates stage-1 survivors and downstream scoring.
    let promo_counters = promo.total_paper_counters();
    let yy9_counters = yy9.total_paper_counters();
    let promo_rescans_per_res = promo_counters.rescans as f64 / promo_counters.db_residues as f64;
    let yy9_rescans_per_res = yy9_counters.rescans as f64 / yy9_counters.db_residues as f64;
    assert!(
        promo_rescans_per_res > yy9_rescans_per_res,
        "promo must rescan more per scanned residue: {promo_rescans_per_res:.2e} vs {yy9_rescans_per_res:.2e}"
    );
}

#[test]
fn inference_flat_across_threads_msa_scales() {
    let data = shared_data(SampleId::S7rce);
    let o = options();
    let t1 = run_pipeline(&data, Platform::Desktop, 1, &o);
    let t4 = run_pipeline(&data, Platform::Desktop, 4, &o);
    // MSA speeds up substantially…
    assert!(t1.msa_seconds() / t4.msa_seconds() > 1.8);
    // …inference does not (single dispatch thread, Fig. 6).
    let inf_ratio = t1.inference_seconds() / t4.inference_seconds();
    assert!(
        (0.8..=1.1).contains(&inf_ratio),
        "inference must be flat, ratio {inf_ratio:.2}"
    );
}

#[test]
fn oom_behaviour_matches_fig2_thresholds() {
    use afsysbench::core::msa_phase::run_msa_phase;
    use afsysbench::hmmer::nhmmer;
    use afsysbench::simarch::memory::CapacityModel;

    // The memory model itself: 1,135 nt completes only with CXL; 1,335
    // fails everywhere (server capacities).
    let server = CapacityModel::new(&Platform::Server.spec());
    assert!(server.admit(nhmmer::paper_peak_bytes(1135)).completes());
    assert!(!server
        .clone()
        .without_cxl()
        .admit(nhmmer::paper_peak_bytes(1135))
        .completes());
    assert!(!server.admit(nhmmer::paper_peak_bytes(1335)).completes());

    // And the phase runner surfaces OOM as a non-completing result:
    // 6QNR's 120-nt RNA is fine everywhere.
    let qnr = shared_data(SampleId::S6qnr);
    let r = run_msa_phase(
        &qnr,
        Platform::Desktop,
        4,
        &MsaPhaseOptions {
            sample_cap: 200_000,
            ..MsaPhaseOptions::default()
        },
    );
    assert!(r.completed());
}

#[test]
fn deterministic_end_to_end() {
    let data = shared_data(SampleId::S7rce);
    let a = run_pipeline(&data, Platform::Server, 2, &options());
    let b = run_pipeline(&data, Platform::Server, 2, &options());
    assert_eq!(a.total_seconds(), b.total_seconds());
    assert_eq!(a.msa.sim.totals, b.msa.sim.totals);
}
