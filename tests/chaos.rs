//! Chaos tests: the resilient executor under deterministic fault
//! injection.
//!
//! Everything here is seeded and simulated — the same fault plan always
//! yields the same terminal [`RunOutcome`], the same retry/recovery
//! accounting and byte-identical serialized reports. `AFSB_CHAOS_SEED`
//! overrides the default seed set so CI can sweep seeds without a
//! recompile.

use afsysbench::core::context::{BenchContext, ChainSearch, ContextConfig, SampleSearchData};
use afsysbench::core::msa_phase::{run_msa_phase, MsaPhaseOptions};
use afsysbench::core::pipeline::{run_pipeline, PipelineOptions};
use afsysbench::core::report::resilience_table;
use afsysbench::core::resilience::{
    run_resilient, run_resilient_traced, DegradeStep, ResilienceOptions, ResilientResult,
    RunOutcome,
};
use afsysbench::core::results::{to_json, PipelineRecord};
use afsysbench::model::ModelConfig;
use afsysbench::rt::fault::{FaultKind, FaultPlan};
use afsysbench::rt::{Json, ObsSession};
use afsysbench::seq::alphabet::MoleculeKind;
use afsysbench::seq::samples::{self, ComplexityClass, Sample, SampleId};
use afsysbench::simarch::Platform;

use std::sync::{Mutex, OnceLock};

fn shared_data(id: SampleId) -> std::sync::Arc<SampleSearchData> {
    static CTX: OnceLock<Mutex<BenchContext>> = OnceLock::new();
    CTX.get_or_init(|| Mutex::new(BenchContext::new(ContextConfig::test())))
        .lock()
        .expect("context lock")
        .sample_data(id)
}

fn options() -> PipelineOptions {
    PipelineOptions {
        msa: MsaPhaseOptions {
            sample_cap: 200_000,
            ..MsaPhaseOptions::default()
        },
        model: Some(ModelConfig::paper()),
        seed: 9,
    }
}

/// Search data for the synthetic RNA memory probe (no executed
/// counters; admission reads only chain geometry).
fn rna_probe(len: usize) -> SampleSearchData {
    let assembly = samples::rna_memory_probe(len);
    SampleSearchData {
        sample: Sample {
            id: SampleId::S6qnr,
            assembly,
            complexity: ComplexityClass::High,
            characteristic: "synthetic RNA memory probe",
        },
        chains: vec![ChainSearch {
            chain_id: "R".into(),
            kind: MoleculeKind::Rna,
            query_len: len,
            low_complexity_fraction: 0.0,
            per_db: Vec::new(),
        }],
        msa_depth: 64,
    }
}

fn report_bytes(r: &ResilientResult) -> String {
    let record = PipelineRecord::from_resilient(r);
    format!(
        "{}\n{}",
        to_json(std::slice::from_ref(&record)),
        resilience_table(std::slice::from_ref(r))
    )
}

#[test]
fn empty_plan_reproduces_the_baseline_exactly() {
    let data = shared_data(SampleId::S7rce);
    let baseline = run_pipeline(&data, Platform::Server, 4, &options());
    let r = run_resilient(
        &data,
        Platform::Server,
        4,
        &options(),
        &ResilienceOptions::default(),
        &FaultPlan::none(),
    );
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.retries, 0);
    assert_eq!(r.recovery_seconds, 0.0);
    assert!(r.fault_events.is_empty());
    assert!(r.degrade_steps.is_empty());
    assert_eq!(r.wall_seconds, baseline.total_seconds());
    let pipeline = r.pipeline.as_ref().expect("completed run has a pipeline");
    assert_eq!(pipeline.msa_seconds(), baseline.msa_seconds());
    assert_eq!(pipeline.inference_seconds(), baseline.inference_seconds());
    // The flattened records are indistinguishable too.
    assert_eq!(
        to_json(&[PipelineRecord::from_resilient(&r)]),
        to_json(&[PipelineRecord::from(&baseline)])
    );
}

#[test]
fn seeded_plans_terminate_deterministically() {
    let seeds: Vec<u64> = match std::env::var("AFSB_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("AFSB_CHAOS_SEED must be an integer")],
        Err(_) => vec![101, 202, 303],
    };
    let data = shared_data(SampleId::S7rce);
    for seed in seeds {
        let plan = FaultPlan::seeded(seed);
        let run = || {
            run_resilient(
                &data,
                Platform::Server,
                4,
                &options(),
                &ResilienceOptions::default(),
                &plan,
            )
        };
        let a = run();
        let b = run();
        // Terminal state reached, deterministically.
        assert!(
            matches!(
                a.outcome,
                RunOutcome::Completed | RunOutcome::Degraded | RunOutcome::Failed
            ),
            "seed {seed}: 7RCE fits everywhere, outcome {} must not be OOM",
            a.outcome
        );
        assert_eq!(a.outcome, b.outcome, "seed {seed}");
        assert_eq!(a.retries, b.retries, "seed {seed}");
        // Byte-identical reports, including retry/recovery accounting.
        assert_eq!(report_bytes(&a), report_bytes(&b), "seed {seed}");
    }
}

#[test]
fn checkpointed_kill_recovers_cheaper_than_full_rerun() {
    let data = shared_data(SampleId::S7rce);
    let plan = FaultPlan::none().with(FaultKind::OomKill { at_fraction: 0.7 });
    let run = |checkpointing: bool| {
        run_resilient(
            &data,
            Platform::Server,
            4,
            &options(),
            &ResilienceOptions {
                checkpointing,
                ..ResilienceOptions::default()
            },
            &plan,
        )
    };
    let ckpt = run(true);
    let rerun = run(false);
    for r in [&ckpt, &rerun] {
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.retries, 1);
        assert_eq!(r.fault_events.len(), 1);
    }
    // The whole point of checkpointing: only the non-durable tail of the
    // killed attempt is redone, so recovery is strictly cheaper than the
    // from-scratch rerun — and so is the end-to-end wall.
    assert!(
        ckpt.recovery_seconds < rerun.recovery_seconds,
        "checkpointed recovery {:.1}s must beat full rerun {:.1}s",
        ckpt.recovery_seconds,
        rerun.recovery_seconds
    );
    assert!(ckpt.wall_seconds < rerun.wall_seconds);
    // And the redone work is bounded by the kill point: the rerun redoes
    // everything up to the kill, the checkpoint only the tail.
    let clean_msa = run_msa_phase(&data, Platform::Server, 4, &options().msa);
    assert!(ckpt.recovery_seconds < 0.7 * clean_msa.wall_seconds());
}

#[test]
fn degradation_ladder_first_rung_cxl() {
    // Fig. 2: 1,335 nt (~810 GiB) beats the server's stock 764 GiB but
    // fits after attaching another 256 GiB of CXL — rung 1 suffices.
    let data = rna_probe(1335);
    let r = run_resilient(
        &data,
        Platform::Server,
        8,
        &options(),
        &ResilienceOptions::default(),
        &FaultPlan::none(),
    );
    assert_eq!(r.outcome, RunOutcome::Degraded);
    assert_eq!(
        r.degrade_steps,
        vec![DegradeStep::CxlExpansion { bytes: 256 << 30 }]
    );
    assert!(r.pipeline.is_some());
    assert_eq!(r.retries, 0);
}

#[test]
fn degradation_ladder_second_rung_window_cap() {
    // 2,000 nt overflows even the expanded tier; capping the nhmmer
    // window at 900 nt brings the peak back under it (rungs 1+2).
    let data = rna_probe(2000);
    let r = run_resilient(
        &data,
        Platform::Server,
        8,
        &options(),
        &ResilienceOptions::default(),
        &FaultPlan::none(),
    );
    assert_eq!(r.outcome, RunOutcome::Degraded);
    assert_eq!(
        r.degrade_steps,
        vec![
            DegradeStep::CxlExpansion { bytes: 256 << 30 },
            DegradeStep::RnaWindowCap { cap: 900 },
        ]
    );
    assert!(r.pipeline.is_some());
}

#[test]
fn degradation_ladder_exhausted_is_still_oom() {
    // The desktop cannot hold even the fully degraded 1,135-nt job: all
    // three rungs are tried and the run still lands in OOM — but the
    // attempted steps are recorded for the operator.
    let data = rna_probe(1135);
    let r = run_resilient(
        &data,
        Platform::Desktop,
        8,
        &options(),
        &ResilienceOptions::default(),
        &FaultPlan::none(),
    );
    assert_eq!(r.outcome, RunOutcome::Oom);
    assert!(r.pipeline.is_none());
    assert_eq!(r.degrade_steps.len(), 3);
    assert!(matches!(
        r.degrade_steps[2],
        DegradeStep::MsaDepthCap { .. }
    ));
}

#[test]
fn gpu_init_failure_retries_to_the_clean_result() {
    let data = shared_data(SampleId::S2pv7);
    let baseline = run_pipeline(&data, Platform::Desktop, 2, &options());
    let r = run_resilient(
        &data,
        Platform::Desktop,
        2,
        &options(),
        &ResilienceOptions::default(),
        &FaultPlan::none().with(FaultKind::GpuInitFailure),
    );
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.retries, 1);
    assert!(r.recovery_seconds > 0.0);
    // The retried inference is indistinguishable from a clean run.
    let pipeline = r.pipeline.expect("completed");
    assert_eq!(
        pipeline.inference.wall_seconds(),
        baseline.inference.wall_seconds()
    );
    // The wasted init + backoff landed on the wall.
    assert!(r.wall_seconds > baseline.total_seconds());
}

#[test]
fn repeated_kills_exhaust_the_retry_budget() {
    let data = shared_data(SampleId::S2pv7);
    let mut plan = FaultPlan::none();
    for _ in 0..4 {
        plan = plan.with(FaultKind::OomKill { at_fraction: 0.5 });
    }
    let r = run_resilient(
        &data,
        Platform::Server,
        4,
        &options(),
        &ResilienceOptions::default(),
        &plan,
    );
    assert_eq!(r.outcome, RunOutcome::Failed);
    assert!(r.pipeline.is_none());
    assert_eq!(r.retries, 4);
    assert_eq!(r.fault_events.len(), 4);
    assert!(r.recovery_seconds > 0.0);
}

#[test]
fn absorbed_faults_slow_the_run_without_retries() {
    let data = shared_data(SampleId::S7rce);
    let baseline = run_pipeline(&data, Platform::Desktop, 4, &options());
    let r = run_resilient(
        &data,
        Platform::Desktop,
        4,
        &options(),
        &ResilienceOptions::default(),
        &FaultPlan::none()
            .with(FaultKind::StorageStall {
                stall_seconds: 25.0,
            })
            .with(FaultKind::Straggler { factor: 1.5 }),
    );
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.retries, 0);
    assert_eq!(r.fault_events.len(), 2);
    assert!(
        r.wall_seconds > baseline.total_seconds(),
        "stall + straggler must cost wall time: {} vs {}",
        r.wall_seconds,
        baseline.total_seconds()
    );
}

#[test]
fn traced_chaos_run_is_deterministic_and_names_fired_faults() {
    let data = shared_data(SampleId::S7rce);
    let plan = FaultPlan::none()
        .with(FaultKind::OomKill { at_fraction: 0.7 })
        .with(FaultKind::StorageStall {
            stall_seconds: 30.0,
        })
        .with(FaultKind::GpuInitFailure);
    let resilience = ResilienceOptions::default();
    let run = || {
        let mut obs = ObsSession::new();
        let r = run_resilient_traced(
            &data,
            Platform::Server,
            4,
            &options(),
            &resilience,
            &plan,
            &mut obs,
        );
        (r, obs)
    };
    let (a, obs_a) = run();
    let (_b, obs_b) = run();

    // Tracing must not perturb the executor: accounting is identical to
    // the untraced run, and two traced runs are byte-identical.
    let plain = run_resilient(&data, Platform::Server, 4, &options(), &resilience, &plan);
    assert_eq!(report_bytes(&a), report_bytes(&plain));
    let trace = obs_a.chrome_trace_text();
    assert_eq!(
        trace,
        obs_b.chrome_trace_text(),
        "same plan+seed must export a byte-identical Chrome trace"
    );

    // The export round-trips through rt::json.
    let parsed = Json::parse(&trace).expect("chrome trace must be valid JSON");
    let events = parsed
        .field("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Nested MSA + inference spans with paper-symbol attribution, plus
    // the resilience narration spans.
    let names = obs_a.tracer.span_names();
    for expected in [
        "resilient_run",
        "msa_attempt_aborted",
        "backoff",
        "msa_phase",
        "hmmer_scan",
        "calc_band_9",
        "storage_io",
        "inference_phase",
        "xla_compile",
        "_M_fill_insert",
        "gpu_compute",
    ] {
        assert!(names.contains(&expected), "missing span {expected}");
    }

    // One instant event per fault the plan actually fired, named after
    // the fault kind.
    assert_eq!(a.fault_events.len(), 3, "all three scheduled faults fire");
    for e in &a.fault_events {
        let name = format!("fault:{}", e.kind.label());
        let fired = a
            .fault_events
            .iter()
            .filter(|f| f.kind.label() == e.kind.label())
            .count();
        assert_eq!(obs_a.tracer.instant_count(&name), fired, "{name}");
    }

    // Retry/checkpoint/outcome narration rides along.
    assert!(obs_a.tracer.instant_count("retry") >= 2);
    assert!(obs_a.tracer.instant_count("checkpoint-restore") >= 1);
    assert_eq!(
        obs_a
            .tracer
            .instant_count(&format!("outcome:{}", a.outcome)),
        1
    );
    assert!(obs_a.metrics.counter("resilience.retries") >= 2);
    assert!(obs_a.metrics.counter("msa.hmmer.calc_band_9.cells") > 0);
}

#[test]
fn compile_stall_converts_to_deadline_retry() {
    let data = shared_data(SampleId::S2pv7);
    let baseline = run_pipeline(&data, Platform::Server, 2, &options());
    let clean_inference = baseline.inference.wall_seconds();
    let r = run_resilient(
        &data,
        Platform::Server,
        2,
        &options(),
        &ResilienceOptions {
            inference_deadline_s: Some(clean_inference * 1.2),
            ..ResilienceOptions::default()
        },
        &FaultPlan::none().with(FaultKind::XlaCompileStall { factor: 10.0 }),
    );
    // The stalled attempt blows the phase deadline; the retry (stall
    // already consumed) compiles at normal speed and finishes in budget.
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.retries, 1);
    assert!(r.recovery_seconds >= clean_inference * 1.2);
    let pipeline = r.pipeline.expect("completed");
    assert_eq!(pipeline.inference.wall_seconds(), clean_inference);
}
