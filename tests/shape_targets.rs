//! Shape-target assertions: the qualitative findings of every paper table
//! and figure, asserted against the simulation (DESIGN.md §4 defines
//! "reproduced" as these shapes holding).

use afsysbench::core::context::{BenchContext, ContextConfig};
use afsysbench::core::inference_phase::{run_inference_phase, InferenceOptions};
use afsysbench::core::msa_phase::{run_msa_phase, MsaPhaseOptions};
use afsysbench::core::report::cpu_metrics;
use afsysbench::core::runner;
use afsysbench::model::ModelConfig;
use afsysbench::seq::samples::SampleId;
use afsysbench::simarch::Platform;

use std::sync::{Mutex, OnceLock};

/// Shared executed-search cache: building the synthetic databases and
/// running the search engine dominates test time, and the data is
/// immutable, so every test in this binary shares one context.
fn shared_data(id: SampleId) -> std::sync::Arc<afsysbench::core::context::SampleSearchData> {
    static CTX: OnceLock<Mutex<BenchContext>> = OnceLock::new();
    CTX.get_or_init(|| Mutex::new(BenchContext::new(ContextConfig::test())))
        .lock()
        .expect("context lock")
        .sample_data(id)
}

fn msa_options() -> MsaPhaseOptions {
    MsaPhaseOptions {
        // Big enough for temporal reuse on the shared window (the LLC
        // shapes need it), small enough for CI.
        sample_cap: 6_000_000,
        ..MsaPhaseOptions::default()
    }
}

/// Table III shapes: Intel high-and-persistent LLC misses vs AMD
/// low-then-rising; Intel near-zero dTLB vs AMD heavy; Intel higher IPC.
#[test]
fn table3_cross_architecture_shapes() {
    let data = shared_data(SampleId::S2pv7);
    let o = msa_options();

    let xeon_1t = cpu_metrics(&run_msa_phase(&data, Platform::Server, 1, &o).sim);
    let xeon_6t = cpu_metrics(&run_msa_phase(&data, Platform::Server, 6, &o).sim);
    let ryzen_1t = cpu_metrics(&run_msa_phase(&data, Platform::Desktop, 1, &o).sim);
    let ryzen_6t = cpu_metrics(&run_msa_phase(&data, Platform::Desktop, 6, &o).sim);

    // Intel's small LLC is overwhelmed at every thread count.
    assert!(
        xeon_1t.llc_miss_pct > 25.0,
        "xeon 1T LLC {:.1}",
        xeon_1t.llc_miss_pct
    );
    assert!(
        xeon_6t.llc_miss_pct > 40.0,
        "xeon 6T LLC {:.1}",
        xeon_6t.llc_miss_pct
    );
    // AMD starts low and saturates by 6T (capacity contention).
    assert!(
        ryzen_1t.llc_miss_pct < xeon_1t.llc_miss_pct,
        "ryzen 1T {:.1} must be below xeon {:.1}",
        ryzen_1t.llc_miss_pct,
        xeon_1t.llc_miss_pct
    );
    assert!(
        ryzen_6t.llc_miss_pct > ryzen_1t.llc_miss_pct + 5.0,
        "ryzen LLC must grow markedly: {:.1} -> {:.1}",
        ryzen_1t.llc_miss_pct,
        ryzen_6t.llc_miss_pct
    );
    // dTLB: Intel negligible (huge pages), AMD heavy.
    assert!(xeon_1t.dtlb_miss_pct < 1.0);
    assert!(
        ryzen_1t.dtlb_miss_pct > 10.0,
        "ryzen dTLB {:.1}",
        ryzen_1t.dtlb_miss_pct
    );
    // IPC: Intel sustains more per cycle; both stay near Table III's band.
    assert!(xeon_1t.ipc > ryzen_1t.ipc);
    assert!(
        (2.2..=4.1).contains(&xeon_1t.ipc),
        "xeon IPC {:.2}",
        xeon_1t.ipc
    );
    assert!(
        (2.0..=3.4).contains(&ryzen_1t.ipc),
        "ryzen IPC {:.2}",
        ryzen_1t.ipc
    );
    // Branch misses: Intel ≲ 0.4 %, AMD around 1 %.
    assert!(xeon_1t.branch_miss_pct < 0.45);
    assert!((0.5..=1.6).contains(&ryzen_1t.branch_miss_pct));
}

/// Table IV shapes: calc_band kernels dominate cycles; copy_to_iter's
/// cache-miss share shrinks with threads while calc_band_9's grows.
#[test]
fn table4_function_level_shapes() {
    let data = shared_data(SampleId::S2pv7);
    let o = msa_options();
    let t1 = run_msa_phase(&data, Platform::Server, 1, &o);
    let t4 = run_msa_phase(&data, Platform::Server, 4, &o);

    let cyc9 = t1.sim.report.cycles_share("calc_band_9");
    let cyc10 = t1.sim.report.cycles_share("calc_band_10");
    assert!(
        cyc9 + cyc10 > 0.35,
        "calc_band kernels must dominate cycles: {:.2}",
        cyc9 + cyc10
    );
    assert!(
        cyc9 > cyc10,
        "band9 {cyc9:.3} slightly above band10 {cyc10:.3}"
    );
    // Buffer management is a visible consumer (test-scale databases
    // inflate the planted-survivor fraction, depressing the I/O share
    // relative to the bench-scale run recorded in EXPERIMENTS.md).
    assert!(t1.sim.report.cycles_share("addbuf") > 0.015);
    assert!(t1.sim.report.cycles_share("seebuf") > 0.005);

    let copy_1t = t1.sim.report.cache_miss_share("copy_to_iter");
    let copy_4t = t4.sim.report.cache_miss_share("copy_to_iter");
    assert!(
        copy_4t < copy_1t,
        "copy_to_iter miss share must shrink with threads: {copy_1t:.2} -> {copy_4t:.2}"
    );
    // The compute-kernel-to-copy miss ratio rises with threads (the
    // paper's compute-bound → memory-bound transition; in the paper the
    // band share doubles absolutely, in our model the shift shows as the
    // ratio because band capacity misses exist already at 1T).
    let band_1t = t1.sim.report.cache_miss_share("calc_band_9");
    let band_4t = t4.sim.report.cache_miss_share("calc_band_9");
    assert!(
        band_4t / copy_4t > band_1t / copy_1t,
        "band/copy miss ratio must rise: {:.2} -> {:.2}",
        band_1t / copy_1t,
        band_4t / copy_4t
    );
}

/// Promo-vs-2PV7 (§V-B2a): the repetitive input's regular rescan pattern
/// is prefetch-friendly, giving it better Intel LLC behaviour than 2PV7.
/// (The paper sees the benefit materialize at 6T; in our model it shows
/// at low thread counts before capacity contention levels both — the
/// divergence is recorded in EXPERIMENTS.md.)
#[test]
fn promo_prefetch_friendliness_on_intel() {
    let o = msa_options();
    let pv7 = shared_data(SampleId::S2pv7);
    let promo = shared_data(SampleId::Promo);
    let pv7_1t = cpu_metrics(&run_msa_phase(&pv7, Platform::Server, 1, &o).sim);
    let promo_1t = cpu_metrics(&run_msa_phase(&promo, Platform::Server, 1, &o).sim);
    assert!(
        promo_1t.llc_miss_pct < pv7_1t.llc_miss_pct - 5.0,
        "promo's regular rescans must prefetch better: {:.1} vs {:.1}",
        promo_1t.llc_miss_pct,
        pv7_1t.llc_miss_pct
    );
    // And promo sustains equal-or-higher IPC while doing more work — the
    // "regular patterns align with prefetchers" observation.
    assert!(promo_1t.ipc > pv7_1t.ipc - 0.15);
}

/// Fig. 4/5 shapes: near-ideal 1→2T, saturation ≥4T, and 6QNR degrading
/// beyond its knee.
#[test]
fn thread_scaling_shapes() {
    let o = msa_options();
    let yy9 = shared_data(SampleId::S1yy9);
    let sweep = runner::msa_thread_sweep(&yy9, Platform::Server, &[1, 2, 4, 8], &o);
    let s = runner::speedup_curve(&sweep).expect("sweep includes the 1-thread baseline");
    assert!(s[1].1 > 1.6, "1→2T near-ideal, got {:.2}", s[1].1);
    let marginal_4_to_8 = s[3].1 / s[2].1;
    assert!(
        marginal_4_to_8 < 1.75,
        "4→8T must saturate, got {marginal_4_to_8:.2}"
    );

    // 6QNR: time must stop improving (or degrade) between 4T and 8T —
    // nhmmer's per-thread state overhead (Fig. 5).
    let qnr = shared_data(SampleId::S6qnr);
    let sweep = runner::msa_thread_sweep(&qnr, Platform::Server, &[4, 6, 8], &o);
    let t4 = sweep[0].1.wall_seconds();
    let t8 = sweep[2].1.wall_seconds();
    assert!(
        t8 > t4 * 0.85,
        "6QNR gains must collapse beyond 4T: 4T {t4:.0}s vs 8T {t8:.0}s"
    );
}

/// Fig. 8 shapes: Server inference is overhead-dominated for small
/// inputs; Desktop is compute-dominated; 6QNR spills to unified memory on
/// the Desktop only.
#[test]
fn inference_breakdown_shapes() {
    let model = ModelConfig::paper();
    let pv7 = shared_data(SampleId::S2pv7);
    let mk = |platform, data: &afsysbench::core::context::SampleSearchData| {
        run_inference_phase(
            &data.sample.assembly,
            platform,
            &InferenceOptions {
                model,
                msa_depth: data.msa_depth,
                threads: 1,
                seed: 5,
            },
        )
    };
    let server = mk(Platform::Server, &pv7);
    let desktop = mk(Platform::Desktop, &pv7);
    assert!(
        server.breakdown.overhead_share() > 0.5,
        "server 2PV7 overhead {:.2}",
        server.breakdown.overhead_share()
    );
    assert!(
        desktop.breakdown.gpu_compute_s
            > desktop.breakdown.init_s + desktop.breakdown.xla_compile_s,
        "desktop compute must dominate"
    );
    // H100 computes much faster; Ryzen hosts init/compile much faster.
    assert!(server.breakdown.gpu_compute_s < desktop.breakdown.gpu_compute_s);
    assert!(server.breakdown.xla_compile_s > desktop.breakdown.xla_compile_s);

    let qnr = shared_data(SampleId::S6qnr);
    assert!(mk(Platform::Desktop, &qnr).breakdown.uvm_fraction > 0.0);
    assert_eq!(mk(Platform::Server, &qnr).breakdown.uvm_fraction, 0.0);
}

/// Fig. 9 / Table VI shapes: triangle attention is the Pairformer
/// hotspot; global attention the Diffusion hotspot, with its share
/// growing from 2PV7 to promo; layer costs grow superlinearly.
#[test]
fn layer_distribution_shapes() {
    use afsysbench::gpu::device::GpuSpec;
    use afsysbench::gpu::price_log;
    use afsysbench::model::run_inference;
    use afsysbench::seq::samples;

    let model = ModelConfig::paper();
    let h100 = GpuSpec::h100();
    let mut shares = Vec::new();
    let mut pairformer_totals = Vec::new();
    for id in [SampleId::S2pv7, SampleId::Promo] {
        let asm = samples::sample(id).assembly;
        let r = run_inference(&asm, 256, &model, 5);
        let (per_label, total) = price_log(&r.cost_log, &h100, 0.0);
        let tri_attn = per_label["pairformer/triangle_attention"];
        let tri_mult = per_label["pairformer/triangle_mult_update"];
        let global = per_label["diffusion/global_attention"];
        let local = per_label["diffusion/local_attention_encoder"];
        assert!(tri_attn > tri_mult, "{id}: attention beats mult");
        assert!(global > local, "{id}: global attention dominates diffusion");
        shares.push(global / total);
        pairformer_totals.push(tri_attn + tri_mult + per_label["pairformer/pair_transition"]);
    }
    // Pairformer cost grows superlinearly with length (857/484 = 1.77x).
    let growth = pairformer_totals[1] / pairformer_totals[0];
    assert!(
        growth > 2.4,
        "Pairformer must grow superlinearly, got {growth:.2}"
    );
}
