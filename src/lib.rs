//! Umbrella crate re-exporting the AFSysBench-RS workspace.
//!
//! See [`afsb_core`] for the pipeline entry points.
pub use afsb_core as core;
pub use afsb_gpu as gpu;
pub use afsb_hmmer as hmmer;
pub use afsb_model as model;
pub use afsb_perf as perf;
pub use afsb_rt as rt;
pub use afsb_seq as seq;
pub use afsb_simarch as simarch;
pub use afsb_tensor as tensor;
