//! Chaos recovery: run the pipeline under an adversarial fault plan and
//! watch the resilient executor absorb it.
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```
//!
//! The plan kills the MSA phase mid-flight (the paper's §III-C OOM-kill
//! failure mode, here recovered from a checkpoint), stalls the storage
//! device, and fails GPU initialization once. Every fault is charged in
//! simulated seconds and the whole run is deterministic: re-running this
//! example prints byte-identical output.

use afsysbench::core::context::{BenchContext, ContextConfig};
use afsysbench::core::msa_phase::MsaPhaseOptions;
use afsysbench::core::pipeline::{run_pipeline, PipelineOptions};
use afsysbench::core::report;
use afsysbench::core::resilience::{run_resilient, ResilienceOptions};
use afsysbench::core::MemoryEstimator;
use afsysbench::model::ModelConfig;
use afsysbench::rt::fault::{FaultKind, FaultPlan};
use afsysbench::seq::samples::{self, SampleId};
use afsysbench::simarch::Platform;

fn main() {
    println!("building databases and running the search engine for 7RCE…");
    let mut ctx = BenchContext::new(ContextConfig::bench());
    let data = ctx.sample_data(SampleId::S7rce);

    let options = PipelineOptions {
        msa: MsaPhaseOptions::default(),
        model: Some(ModelConfig::paper()),
        seed: 1,
    };
    let baseline = run_pipeline(&data, Platform::Server, 4, &options);
    println!(
        "fault-free baseline: {} end-to-end\n",
        report::fmt_seconds(baseline.total_seconds())
    );

    // An adversarial day in production: the job is OOM-killed 60 % of
    // the way through the MSA, the NVMe device stalls for 20 s, and the
    // GPU driver fails to initialize once.
    let plan = FaultPlan::none()
        .with(FaultKind::OomKill { at_fraction: 0.6 })
        .with(FaultKind::StorageStall {
            stall_seconds: 20.0,
        })
        .with(FaultKind::GpuInitFailure);
    println!("injecting {} faults…", plan.faults().len());

    let r = run_resilient(
        &data,
        Platform::Server,
        4,
        &options,
        &ResilienceOptions::default(),
        &plan,
    );
    for event in &r.fault_events {
        println!("  fault: {event}");
    }
    println!(
        "\noutcome {} after {} retries, {} lost to recovery ({:.1}% overhead vs baseline):",
        r.outcome,
        r.retries,
        report::fmt_seconds(r.recovery_seconds),
        (r.wall_seconds / baseline.total_seconds() - 1.0) * 100.0,
    );
    println!("{}", report::resilience_table(std::slice::from_ref(&r)));

    // Graceful degradation: a 1,335-nt RNA exceeds the server's stock
    // memory. The §VI estimator flags it pre-flight and the executor
    // attaches a CXL expansion instead of burning hours toward an OOM.
    let probe = samples::rna_memory_probe(1335);
    println!("pre-flight for a 1,335-nt RNA on the server:");
    print!(
        "{}",
        MemoryEstimator::new(8).preflight(&probe, Platform::Server)
    );
}
