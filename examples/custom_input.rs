//! Build a custom AF3 job from scratch — the crate as a *library*: define
//! an assembly in the AF3 JSON dialect, search it, and characterize it on
//! a platform of your choice.
//!
//! ```text
//! cargo run --release --example custom_input
//! ```

use afsysbench::core::estimator::MemoryEstimator;
use afsysbench::core::inference_phase::{run_inference_phase, InferenceOptions};
use afsysbench::hmmer::jackhmmer::{self, JackhmmerConfig};
use afsysbench::model::ModelConfig;
use afsysbench::seq::database::{SequenceDatabase, StandardDb};
use afsysbench::seq::input;
use afsysbench::simarch::Platform;

const JOB: &str = r#"{
    "name": "my_dimer",
    "modelSeeds": [42],
    "sequences": [
        { "protein": { "id": ["A", "B"],
            "sequence": "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQFEVVHSLAKWKRQTLGQHDFSAGEGLYTHMKALRPDEDRLSPLHSVYVDQWDWERVMGDGERQFSTLKSTVEAIWAGIKATEAAVSEEFGLAPFLPDQIHFVHSQELLSRYPDLDAKGRERAIAKDLGAVFLVGIGGKLSDGHRHDVRAPDYDDWS" } },
        { "dna": { "id": "C", "sequence": "ATGCGTACGTTAGCCGGATTACGCTTAA" } }
    ],
    "dialect": "alphafold3",
    "version": 1
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the AF3 job document.
    let assembly = input::parse_job(JOB)?;
    println!("parsed job: {assembly}");

    // 2. Pre-flight the memory footprint (§VI).
    let estimator = MemoryEstimator::new(8);
    let preflight = estimator.preflight(&assembly, Platform::Desktop);
    print!("{preflight}");
    assert!(preflight.safe(), "estimator must approve this small job");

    // 3. MSA: jackhmmer for the protein entity against a synthetic
    //    UniRef90 stand-in (DNA chains skip MSA, exactly as AF3 does).
    let protein = assembly.chains()[0].sequence();
    let db = SequenceDatabase::build_with_queries(
        StandardDb::Uniref90.spec(),
        std::slice::from_ref(protein),
    );
    println!("\nsearching {} sequences with jackhmmer…", db.len());
    let result = jackhmmer::run(protein, &db, &JackhmmerConfig::default());
    println!(
        "  {} hits, MSA depth {}, {:.1}e9 DP cells executed",
        result.hits.len(),
        result.msa.depth(),
        result.counters.total_dp_cells() as f64 / 1e9
    );
    for hit in result.hits.iter().take(3) {
        println!("  top hit: {hit}");
    }

    // 4. Inference characterization on the Desktop.
    let inference = run_inference_phase(
        &assembly,
        Platform::Desktop,
        &InferenceOptions {
            model: ModelConfig::paper(),
            msa_depth: result.msa.depth(),
            threads: 1,
            seed: 42,
        },
    );
    println!(
        "\ninference on the RTX 4080: {:.0}s total ({:.0}% GPU compute)\n{}",
        inference.wall_seconds(),
        (1.0 - inference.breakdown.overhead_share()) * 100.0,
        inference.breakdown.timeline
    );
    Ok(())
}
