//! Thread-scaling study (paper Figs. 4 & 5, Observation 3): sweep the MSA
//! phase over 1–8 threads for a small and a large sample and print the
//! speedup curves plus the adaptive recommendation.
//!
//! ```text
//! cargo run --release --example thread_scaling
//! ```

use afsysbench::core::context::{BenchContext, ContextConfig};
use afsysbench::core::msa_phase::MsaPhaseOptions;
use afsysbench::core::report;
use afsysbench::core::runner::{self, MSA_THREAD_SWEEP};
use afsysbench::seq::samples::SampleId;
use afsysbench::simarch::Platform;

fn main() {
    let mut ctx = BenchContext::new(ContextConfig::bench());
    let options = MsaPhaseOptions::default();

    for id in [SampleId::S2pv7, SampleId::S6qnr] {
        println!("\nrunning searches for {id:?}…", id = id.name());
        let data = ctx.sample_data(id);
        for platform in Platform::all() {
            println!(
                "\n== {} on {} ==",
                id.name(),
                report::platform_label(platform)
            );
            let sweep = runner::msa_thread_sweep(&data, platform, &MSA_THREAD_SWEEP, &options);
            let speedups = runner::speedup_curve(&sweep)
                .expect("MSA_THREAD_SWEEP includes the 1-thread baseline");
            println!(
                "  {:>7} {:>12} {:>9} {:>9}",
                "threads", "MSA time", "speedup", "ideal"
            );
            for ((t, r), (_, s)) in sweep.iter().zip(&speedups) {
                println!(
                    "  {:>7} {:>12} {:>8.2}x {:>8}x",
                    t,
                    report::fmt_seconds(r.wall_seconds()),
                    s,
                    t
                );
            }
            let best = runner::recommend_threads(&data, platform, &options);
            println!("  -> adaptive recommendation: {best} threads (AF3's static default is 8)");
        }
    }
}
