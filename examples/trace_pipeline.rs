//! Trace one Server-platform pipeline run under a seeded fault plan and
//! export every observability artifact the suite produces.
//!
//! ```text
//! cargo run --release --example trace_pipeline [OUT_DIR]
//! ```
//!
//! Writes `trace.json` (Chrome trace-event JSON — open it in Perfetto or
//! `chrome://tracing`) and `flame.txt` (collapsed stacks for
//! `flamegraph.pl` / inferno) into `OUT_DIR` (default: the current
//! directory; `AFSB_TRACE=<path>` overrides the trace path), then prints
//! the ASCII span tree and the metrics registry. Everything runs on the
//! simulated clock, so re-running with the same seed produces
//! byte-identical files.

use afsysbench::core::context::{BenchContext, ContextConfig};
use afsysbench::core::msa_phase::MsaPhaseOptions;
use afsysbench::core::pipeline::PipelineOptions;
use afsysbench::core::resilience::{run_resilient_traced, ResilienceOptions};
use afsysbench::model::ModelConfig;
use afsysbench::rt::fault::{FaultKind, FaultPlan};
use afsysbench::rt::{Json, ObsSession};
use afsysbench::seq::samples::SampleId;
use afsysbench::simarch::Platform;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let trace_path = std::env::var("AFSB_TRACE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(&out_dir).join("trace.json"));
    let flame_path = PathBuf::from(&out_dir).join("flame.txt");

    println!("building databases and running the search engine for 7RCE…");
    let mut ctx = BenchContext::new(ContextConfig::bench());
    let data = ctx.sample_data(SampleId::S7rce);

    let options = PipelineOptions {
        msa: MsaPhaseOptions::default(),
        model: Some(ModelConfig::paper()),
        seed: 7,
    };
    // A seeded bad day: mid-MSA OOM kill (recovered from a checkpoint),
    // a storage stall absorbed into the scan, one GPU init failure.
    let plan = FaultPlan::none()
        .with(FaultKind::OomKill { at_fraction: 0.7 })
        .with(FaultKind::StorageStall {
            stall_seconds: 20.0,
        })
        .with(FaultKind::GpuInitFailure);

    let mut obs = ObsSession::new();
    let result = run_resilient_traced(
        &data,
        Platform::Server,
        4,
        &options,
        &ResilienceOptions::default(),
        &plan,
        &mut obs,
    );

    let trace = obs.chrome_trace_text();
    // The export must round-trip through our own JSON parser.
    Json::parse(&trace).expect("exported trace must be valid JSON");
    std::fs::write(&trace_path, &trace).expect("write trace.json");
    std::fs::write(&flame_path, obs.tracer.flamegraph()).expect("write flame.txt");

    println!(
        "\noutcome: {} after {} retries ({} faults fired, {:.1}s simulated wall)",
        result.outcome,
        result.retries,
        result.fault_events.len(),
        result.wall_seconds
    );
    println!("\n── span tree ──────────────────────────────────────────");
    print!("{}", obs.tracer.ascii_tree());
    println!("\n── metrics ────────────────────────────────────────────");
    print!("{}", obs.metrics.render_text());
    println!(
        "\nwrote {} ({} bytes) and {} ({} bytes)",
        trace_path.display(),
        trace.len(),
        flame_path.display(),
        obs.tracer.flamegraph().len()
    );
    println!("open the trace in https://ui.perfetto.dev or chrome://tracing");
}
