//! Server-vs-Desktop comparison (paper Observation 1): the consumer
//! machine beats the HPC box on end-to-end AF3 for mid-scale inputs, and
//! the reasons differ per phase.
//!
//! ```text
//! cargo run --release --example platform_comparison
//! ```

use afsysbench::core::context::{BenchContext, ContextConfig};
use afsysbench::core::msa_phase::MsaPhaseOptions;
use afsysbench::core::pipeline::{run_pipeline, PipelineOptions};
use afsysbench::core::report;
use afsysbench::model::ModelConfig;
use afsysbench::seq::samples::SampleId;
use afsysbench::simarch::Platform;

fn main() {
    let mut ctx = BenchContext::new(ContextConfig::bench());
    let options = PipelineOptions {
        msa: MsaPhaseOptions::default(),
        model: Some(ModelConfig::paper()),
        seed: 3,
    };

    println!(
        "{:>7} {:>9} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "sample", "platform", "MSA", "inference", "total", "IPC", "NVMe util"
    );
    for id in [
        SampleId::S2pv7,
        SampleId::S7rce,
        SampleId::S1yy9,
        SampleId::Promo,
    ] {
        let data = ctx.sample_data(id);
        let mut totals = Vec::new();
        for platform in Platform::all() {
            let r = run_pipeline(&data, platform, 4, &options);
            println!(
                "{:>7} {:>9} {:>11} {:>11} {:>11} {:>9.2} {:>8.0}%",
                r.sample,
                platform.to_string(),
                report::fmt_seconds(r.msa_seconds()),
                report::fmt_seconds(r.inference_seconds()),
                report::fmt_seconds(r.total_seconds()),
                r.msa.sim.ipc(),
                r.msa.iostat.util_pct,
            );
            totals.push(r.total_seconds());
        }
        let ratio = totals[0] / totals[1];
        println!(
            "        -> Desktop is {:.2}x {} end-to-end\n",
            if ratio >= 1.0 { ratio } else { 1.0 / ratio },
            if ratio >= 1.0 { "faster" } else { "slower" }
        );
    }
    println!(
        "The Desktop wins the CPU-bound MSA phase on clocks while its NVMe\n\
         absorbs the cold database scans; the Server's H100 wins raw GPU\n\
         compute but pays far more CPU-side init/compile overhead (Fig. 8)."
    );
}
