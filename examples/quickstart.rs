//! Quickstart: run the full AF3 pipeline for one paper sample on both
//! platforms and print the phase breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use afsysbench::core::context::{BenchContext, ContextConfig};
use afsysbench::core::msa_phase::MsaPhaseOptions;
use afsysbench::core::pipeline::{run_pipeline, PipelineOptions};
use afsysbench::core::report;
use afsysbench::model::ModelConfig;
use afsysbench::seq::samples::SampleId;
use afsysbench::simarch::Platform;

fn main() {
    // Executed search data for 2PV7 (jackhmmer over the synthetic
    // protein databases) — computed once, reused per platform.
    println!("building databases and running jackhmmer for 2PV7…");
    let mut ctx = BenchContext::new(ContextConfig::bench());
    let data = ctx.sample_data(SampleId::S2pv7);
    println!(
        "  {} chain entities searched, MSA depth {}, {:.0} GiB of (modelled) database scanned",
        data.chains.len(),
        data.msa_depth,
        data.paper_scan_bytes() as f64 / (1u64 << 30) as f64,
    );

    let options = PipelineOptions {
        msa: MsaPhaseOptions::default(),
        model: Some(ModelConfig::paper()),
        seed: 1,
    };

    for platform in Platform::all() {
        let r = run_pipeline(&data, platform, 4, &options);
        println!("\n== {} @ 4 threads ==", report::platform_label(platform));
        println!(
            "  MSA phase:        {}",
            report::fmt_seconds(r.msa_seconds())
        );
        println!(
            "  inference phase:  {}  (init {:.0}s, XLA {:.0}s, GPU {:.0}s)",
            report::fmt_seconds(r.inference_seconds()),
            r.inference.breakdown.init_s,
            r.inference.breakdown.xla_compile_s,
            r.inference.breakdown.gpu_compute_s,
        );
        println!(
            "  end-to-end:       {}  (MSA share {:.0}% — the paper's headline)",
            report::fmt_seconds(r.total_seconds()),
            r.msa_share() * 100.0
        );
        println!(
            "  predicted fold:   {} tokens, mean pLDDT {:.1}",
            r.inference.model.structure.len(),
            r.inference.model.structure.mean_plddt()
        );
    }
}
