//! The static memory estimator from the paper's §VI ("Memory Estimation
//! Based on Input Features"): pre-flight an AF3 job JSON before burning
//! hours of MSA only to be OOM-killed.
//!
//! ```text
//! cargo run --release --example memory_guard [job.json]
//! ```
//!
//! Without an argument, the Fig. 2 RNA length series is checked.

use afsysbench::core::MemoryEstimator;
use afsysbench::seq::input;
use afsysbench::seq::samples;
use afsysbench::simarch::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let estimator = MemoryEstimator::new(8); // AF3's default thread count

    if let Some(path) = std::env::args().nth(1) {
        let json = std::fs::read_to_string(&path)?;
        let assembly = input::parse_job(&json)?;
        println!("pre-flight for {assembly}:");
        for platform in Platform::all() {
            println!("\n-- {platform} --");
            print!("{}", estimator.preflight(&assembly, platform));
        }
        return Ok(());
    }

    println!("no job file given — checking the paper's Fig. 2 RNA series\n");
    for len in [621usize, 935, 1135, 1335] {
        let assembly = samples::rna_memory_probe(len);
        let report = estimator.preflight(&assembly, Platform::Server);
        println!("== RNA {len} nt on Server ==");
        print!("{report}");
        println!(
            "   verdict: {}\n",
            if report.safe() {
                "safe to launch"
            } else {
                "DO NOT LAUNCH (would OOM mid-MSA)"
            }
        );
    }
    Ok(())
}
